"""Deterministic fault injection and the executor's retry machinery."""

import pytest

from repro.analysis.trace_io import run_result_to_dict
from repro.config import small_config
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    FailedCell,
    RetryPolicy,
    SweepExecutor,
    SweepTask,
)
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    CorruptResult,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_fault_plan,
)
from repro.runtime.progress import SweepInstrumentation

CFG = small_config(n_cus=2, waves_per_cu=4)


def make_task(workload="comd", design="STATIC@1.7", **kw):
    kw.setdefault("scale", 0.1)
    kw.setdefault("max_epochs", 60)
    return SweepTask(
        workload=workload, design=design, config=CFG,
        oracle_sample_freqs=3, **kw
    )


GRID = [
    make_task(w, d)
    for w in ("comd", "xsbench")
    for d in ("STATIC@1.7", "PCSTALL")
]

#: Retries without sleeping - the machinery, not the wall clock.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


class TestFaultSpec:
    def test_exact_and_wildcard_matching(self):
        assert FaultSpec("comd/PCSTALL").matches("comd/PCSTALL")
        assert not FaultSpec("comd/PCSTALL").matches("comd/STALL")
        assert FaultSpec("*/PCSTALL").matches("xsbench/PCSTALL")
        assert not FaultSpec("*/PCSTALL").matches("xsbench/STALL")
        assert FaultSpec("comd/*").matches("comd/STATIC@1.7")
        assert FaultSpec("*").matches("anything at all")

    def test_attempt_window(self):
        spec = FaultSpec("x", attempts=2)
        assert spec.active_on(1) and spec.active_on(2)
        assert not spec.active_on(3)

    def test_permanent_fault(self):
        spec = FaultSpec("x", attempts=None)
        assert spec.active_on(1) and spec.active_on(99)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("x", mode="explode")


class TestFaultPlan:
    def test_apply_raise(self):
        plan = FaultPlan((FaultSpec("a/b", "raise", attempts=1),))
        with pytest.raises(InjectedFaultError):
            plan.apply("a/b", 1)
        assert plan.apply("a/b", 2) is None  # fault expired
        assert plan.apply("other/cell", 1) is None

    def test_apply_corrupt(self):
        plan = FaultPlan((FaultSpec("a/b", "corrupt", attempts=1),))
        got = plan.apply("a/b", 1)
        assert isinstance(got, CorruptResult)
        assert got.label == "a/b" and got.attempt == 1

    def test_apply_hang_falls_through(self):
        # A hung cell eventually produces its normal result, which is
        # what lets an untimed serial final attempt still succeed.
        plan = FaultPlan((FaultSpec("a/b", "hang", attempts=1, hang_s=0.01),))
        assert plan.apply("a/b", 1) is None

    def test_json_round_trip(self):
        plan = FaultPlan(
            (FaultSpec("a/b", "hang", attempts=None, hang_s=2.5),
             FaultSpec("*/PCSTALL", "corrupt", attempts=3)),
            seed=7, fraction=0.25, fraction_mode="corrupt",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert active_fault_plan() is None
        plan = FaultPlan((FaultSpec("a/b", attempts=1),), seed=3)
        with plan:
            assert active_fault_plan() == plan
        assert active_fault_plan() is None

    def test_malformed_env_plan_is_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        assert active_fault_plan() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, '{"specs": [{"cell": "x", "mode": "bad"}]}')
        assert active_fault_plan() is None

    def test_fraction_sampling_is_deterministic(self):
        labels = [f"w{i}/d{j}" for i in range(8) for j in range(4)]
        plan = FaultPlan(seed=1, fraction=0.5)
        picked = [lb for lb in labels if plan.fault_for(lb, 1)]
        assert picked  # a 50% sample of 32 labels is never empty
        assert picked == [lb for lb in labels if plan.fault_for(lb, 1)]
        assert all(plan.fault_for(lb, 1) for lb in labels) is False

    def test_fraction_extremes(self):
        labels = ["a/b", "c/d", "e/f"]
        everything = FaultPlan(fraction=1.0)
        nothing = FaultPlan(fraction=0.0)
        assert all(everything.fault_for(lb, 1) for lb in labels)
        assert not any(nothing.fault_for(lb, 1) for lb in labels)


class TestRetryUnderFaults:
    def test_crash_twice_then_succeed_matches_clean_run(self):
        clean = SweepExecutor(retry=FAST_RETRY).run(GRID)
        plan = FaultPlan((FaultSpec("comd/STATIC@1.7", "raise", attempts=2),))
        progress = SweepInstrumentation()
        with plan:
            faulted = SweepExecutor(retry=FAST_RETRY, progress=progress).run(GRID)
        assert [run_result_to_dict(r) for r in faulted] == [
            run_result_to_dict(r) for r in clean
        ]
        assert progress.retries == 2  # exactly the two injected crashes
        counters = progress.registry.counter_values("sweep_")
        assert counters["sweep_retries_total"] == 2
        assert counters["sweep_faults_injected"] == 2
        assert counters.get("sweep_cells_failed", 0) == 0

    def test_corrupt_result_retried_to_correct_value(self):
        clean = SweepExecutor(retry=FAST_RETRY).run_one(GRID[0])
        plan = FaultPlan((FaultSpec("comd/STATIC@1.7", "corrupt", attempts=1),))
        progress = SweepInstrumentation()
        with plan:
            got = SweepExecutor(retry=FAST_RETRY, progress=progress).run_one(GRID[0])
        assert run_result_to_dict(got) == run_result_to_dict(clean)
        assert progress.retries == 1

    def test_permanent_fault_exhausts_and_raises(self):
        plan = FaultPlan((FaultSpec("comd/*", "raise", attempts=None),))
        with plan, pytest.raises(InjectedFaultError):
            SweepExecutor(retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0)).run(
                GRID
            )

    def test_permanent_fault_recorded_not_raised(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, on_exhausted="record"
        )
        plan = FaultPlan((FaultSpec("comd/STATIC@1.7", "raise", attempts=None),))
        progress = SweepInstrumentation()
        with plan:
            results = SweepExecutor(retry=policy, progress=progress).run(GRID)
        assert isinstance(results[0], FailedCell)
        assert not results[0]  # failed cells are falsy
        assert results[0].attempts == 2
        assert "comd/STATIC@1.7" in results[0].label
        for r in results[1:]:  # collateral cells unaffected
            assert not isinstance(r, FailedCell)
        assert progress.failures == 1
        assert progress.registry.counter_values("sweep_")["sweep_cells_failed"] == 1

    def test_retry_counters_deterministic_across_runs(self):
        plan = FaultPlan((FaultSpec("*/PCSTALL", "raise", attempts=1),))
        counts = []
        for _ in range(2):
            progress = SweepInstrumentation()
            with plan:
                SweepExecutor(retry=FAST_RETRY, progress=progress).run(GRID)
            counts.append(
                (progress.retries,
                 [(lb, at) for lb, at, *_ in progress.retry_events])
            )
        assert counts[0] == counts[1]
        assert counts[0][0] == 2  # one first-attempt crash per PCSTALL cell

    def test_fault_plan_does_not_change_cache_keys(self, tmp_path):
        # Faults are an environment property, not a task property: a
        # result computed under injection (and retried to success) must
        # be a cache hit for the clean re-run.
        cache = ResultCache(tmp_path)
        plan = FaultPlan((FaultSpec("comd/STATIC@1.7", "raise", attempts=1),))
        with plan:
            SweepExecutor(cache=cache, retry=FAST_RETRY).run_one(GRID[0])
        progress = SweepInstrumentation()
        SweepExecutor(cache=ResultCache(tmp_path), progress=progress).run_one(GRID[0])
        assert progress.cache_hits == 1


class TestHangTimeoutIntegration:
    def test_hung_cell_times_out_then_completes_serially(self):
        # The hung cell trips the parallel per-cell timeout twice; the
        # final attempt runs in-process without a timeout, where the
        # hang delays but does not prevent the correct result.
        clean = SweepExecutor().run(GRID[:2])
        plan = FaultPlan(
            (FaultSpec("comd/STATIC@1.7", "hang", attempts=None, hang_s=1.0),)
        )
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        progress = SweepInstrumentation()
        with plan:
            results = SweepExecutor(
                max_workers=2, task_timeout_s=0.4, retry=policy, progress=progress
            ).run(GRID[:2])
        assert [run_result_to_dict(r) for r in results] == [
            run_result_to_dict(r) for r in clean
        ]
        assert progress.retries >= 1
        assert any("timeout" in note or "final attempt" in note
                   for note in progress.events)
