"""Smoke tests at the paper's platform scale (64 CUs, 40 waves/CU).

The full evaluation at paper scale takes minutes per run; these tests
only verify the machinery holds together at that geometry: dispatch,
epoch stepping, domain mapping at 32-CU granularity, and the oracle's
clone determinism with 64 domains.
"""

import pytest

from repro.config import paper_config
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


@pytest.fixture(scope="module")
def paper_gpu():
    cfg = paper_config()
    gpu = Gpu(cfg.gpu, cfg.dvfs.reference_freq_ghz)
    prog = make_loop_program(n_valu=10, n_loads=2, trips=400)
    gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(128, 4)))
    return cfg, gpu


class TestPaperScale:
    def test_geometry(self, paper_gpu):
        cfg, gpu = paper_gpu
        assert len(gpu.cus) == 64
        assert len(gpu.domains) == 64
        assert gpu.resident_wave_count() == 128 * 4

    def test_epoch_runs(self, paper_gpu):
        cfg, gpu = paper_gpu
        result = gpu.run_epoch(cfg.dvfs.epoch_ns)
        assert result.total_committed() > 0
        assert len(result.cu_stats) == 64

    def test_per_domain_frequencies(self, paper_gpu):
        cfg, gpu = paper_gpu
        freqs = [cfg.dvfs.frequencies_ghz[i % 10] for i in range(64)]
        changed = gpu.set_domain_frequencies(freqs)
        assert changed > 0
        result = gpu.run_epoch(cfg.dvfs.epoch_ns)
        assert result.frequencies_ghz == tuple(freqs)

    def test_clone_determinism_at_scale(self, paper_gpu):
        cfg, gpu = paper_gpu
        snap = gpu.clone()
        a = gpu.run_epoch(cfg.dvfs.epoch_ns)
        b = snap.run_epoch(cfg.dvfs.epoch_ns)
        assert a.committed_per_cu() == b.committed_per_cu()

    def test_coarse_domain_granularity(self):
        cfg = paper_config(cus_per_domain=32)
        gpu = Gpu(cfg.gpu, cfg.dvfs.reference_freq_ghz)
        assert len(gpu.domains) == 2
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=100), WorkgroupGeometry(64, 4))
        )
        gpu.set_domain_frequencies([1.3, 2.2])
        assert gpu.cus[0].frequency_ghz == pytest.approx(1.3)
        assert gpu.cus[63].frequency_ghz == pytest.approx(2.2)
        result = gpu.run_epoch(cfg.dvfs.epoch_ns)
        per_domain = gpu.committed_per_domain(result)
        assert len(per_domain) == 2
        assert sum(per_domain) == result.total_committed()
