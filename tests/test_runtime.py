"""Parallel sweep executor, on-disk result cache, instrumentation."""

import dataclasses
import pickle

import pytest

from repro.analysis.trace_io import run_result_to_dict
from repro.config import small_config
from repro.core.objectives import EDnPObjective, PerformanceCapObjective
from repro.runtime.cache import ResultCache, describe_objective, task_key
from repro.runtime.executor import (
    NO_RETRY,
    RetryPolicy,
    SweepExecutor,
    SweepTask,
    SweepTimeoutError,
    run_task,
)
from repro.runtime.progress import SOURCE_CACHE, CellRecord, SweepInstrumentation


CFG = small_config(n_cus=2, waves_per_cu=4)


def make_task(workload="comd", design="STATIC@1.7", scale=0.1, max_epochs=60, **kw):
    return SweepTask(
        workload=workload, design=design, config=CFG, scale=scale,
        max_epochs=max_epochs, oracle_sample_freqs=3, **kw
    )


GRID = [
    make_task(w, d)
    for w in ("comd", "xsbench")
    for d in ("STATIC@1.7", "PCSTALL")
]


class TestCacheKey:
    def test_identical_tasks_same_key(self):
        assert make_task().key() == make_task().key()

    def test_each_field_changes_key(self):
        base = make_task().key()
        assert make_task(workload="xsbench").key() != base
        assert make_task(design="STALL").key() != base
        assert make_task(scale=0.2).key() != base
        assert make_task(max_epochs=61).key() != base
        assert make_task(collect_accuracy=True).key() != base

    def test_config_change_changes_key(self):
        cfg2 = dataclasses.replace(
            CFG, dvfs=dataclasses.replace(CFG.dvfs, epoch_ns=2000.0)
        )
        changed = SweepTask("comd", "STATIC@1.7", cfg2, scale=0.1, max_epochs=60,
                            oracle_sample_freqs=3)
        assert changed.key() != make_task().key()

    def test_objective_state_changes_key(self):
        a = make_task(objective=EDnPObjective(1)).key()
        b = make_task(objective=EDnPObjective(2)).key()
        c = make_task(objective=PerformanceCapObjective(0.05)).key()
        assert len({a, b, c, make_task().key()}) == 4

    def test_objective_description_is_stable(self):
        assert describe_objective(EDnPObjective(2)) == describe_objective(
            EDnPObjective(2)
        )
        assert describe_objective(None) is None

    def test_key_is_hex_digest(self):
        key = task_key({"x": 1})
        assert len(key) == 64
        int(key, 16)


class TestResultCache:
    def test_empty_cache_dir_env_means_unset(self, monkeypatch):
        from repro.runtime.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, default_cache_dir

        monkeypatch.setenv(CACHE_DIR_ENV, "")
        assert default_cache_dir() == __import__("pathlib").Path(DEFAULT_CACHE_DIR)

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"answer": 42})
        assert cache.get("k") == {"answer": 42}
        assert cache.hits == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_corrupted_entry_recomputes_not_crashes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", [1, 2, 3])
        cache.path_for("k").write_bytes(b"not a pickle")
        assert cache.get("k") is None

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", list(range(100)))
        blob = cache.path_for("k").read_bytes()
        cache.path_for("k").write_bytes(blob[: len(blob) // 2])
        assert cache.get("k") is None

    def test_corrupted_cell_recomputed_by_executor(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        first = SweepExecutor(cache=cache).run_one(task)
        cache.path_for(task.key()).write_bytes(b"\x80garbage")
        again = SweepExecutor(cache=ResultCache(tmp_path)).run_one(task)
        assert run_result_to_dict(first) == run_result_to_dict(again)


class TestExecutor:
    def test_run_one_matches_direct_run(self):
        direct = run_task(make_task())
        via_executor = SweepExecutor().run_one(make_task())
        assert run_result_to_dict(direct) == run_result_to_dict(via_executor)

    def test_parallel_results_bit_identical_to_serial(self):
        serial = SweepExecutor(max_workers=1).run(GRID)
        parallel = SweepExecutor(max_workers=2).run(GRID)
        for s, p in zip(serial, parallel):
            assert run_result_to_dict(s) == run_result_to_dict(p)
            assert s.delay_ns == p.delay_ns
            assert s.energy.total == p.energy.total

    def test_result_order_matches_task_order(self):
        results = SweepExecutor(max_workers=2).run(GRID)
        for task, result in zip(GRID, results):
            assert result.workload == task.workload
            assert result.design == task.design

    def test_rerun_hits_cache_with_identical_results(self, tmp_path):
        first = SweepExecutor(max_workers=2, cache=ResultCache(tmp_path)).run(GRID)
        cache = ResultCache(tmp_path)
        second = SweepExecutor(max_workers=2, cache=cache).run(GRID)
        assert cache.hits == len(GRID)
        assert cache.misses == 0
        for a, b in zip(first, second):
            assert run_result_to_dict(a) == run_result_to_dict(b)

    def test_unpicklable_grid_falls_back_to_serial(self):
        obj = EDnPObjective(2)
        obj.hook = lambda: None  # lambdas cannot cross the process boundary
        tasks = [make_task(design="STALL", objective=obj),
                 make_task(workload="xsbench", design="STALL", objective=obj)]
        ex = SweepExecutor(max_workers=2)
        results = ex.run(tasks)
        assert all(r is not None for r in results)
        assert ex.progress.events  # the fallback was recorded

    def test_task_timeout_raises(self):
        # NO_RETRY restores the pre-retry contract: first timeout is fatal.
        slow = [make_task(scale=0.5, max_epochs=400),
                make_task(workload="xsbench", scale=0.5, max_epochs=400)]
        ex = SweepExecutor(max_workers=2, task_timeout_s=1e-4, retry=NO_RETRY)
        with pytest.raises(SweepTimeoutError):
            ex.run(slow)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(max_workers=0)


class TestInstrumentation:
    def test_counters_and_summary(self, tmp_path):
        cache = ResultCache(tmp_path)
        ex = SweepExecutor(cache=cache)
        ex.run(GRID[:2])
        prog = SweepInstrumentation(name="again")
        ex2 = SweepExecutor(cache=ResultCache(tmp_path), progress=prog)
        ex2.run(GRID[:2])
        assert prog.cache_hits == 2
        assert prog.cache_misses == 0
        text = prog.summary()
        assert "cache hits" in text
        assert "again" in text

    def test_cell_records_track_source(self):
        prog = SweepInstrumentation()
        prog.record_cell(CellRecord("a/b", "a", "b", 0.0, SOURCE_CACHE))
        assert prog.cache_hits == 1
        assert prog.compute_s == 0.0

    def test_utilisation_bounded(self):
        prog = SweepInstrumentation(max_workers=4)
        prog.start()
        prog.record_cell(CellRecord("a/b", "a", "b", 1e6, "serial"))
        prog.finish()
        assert 0.0 <= prog.utilisation <= 1.0


class TestMetricsSink:
    """The telemetry registry as the sweep's common metrics sink."""

    def test_record_cell_feeds_registry(self):
        prog = SweepInstrumentation()
        prog.record_cell(
            CellRecord("a/b", "a", "b", 0.5, "serial", hotpath={"cycles": 7})
        )
        prog.record_cell(CellRecord("c/d", "c", "d", 0.0, SOURCE_CACHE))
        counters = prog.registry.counter_values()
        assert counters["sweep_cells_total"] == 2
        assert counters["sweep_cells_serial"] == 1
        assert counters["sweep_cells_cache"] == 1
        assert counters["hotpath_cycles"] == 7
        from repro.telemetry.metrics import SECONDS_BUCKETS

        assert prog.registry.histogram("sweep_cell_wall_s", SECONDS_BUCKETS).total == 2

    def test_as_dict_carries_metrics(self):
        prog = SweepInstrumentation()
        prog.record_cell(CellRecord("a/b", "a", "b", 0.0, SOURCE_CACHE))
        data = prog.as_dict()
        assert data["metrics"]["counters"]["sweep_cells_total"] == 1

    def test_split_sweep_registries_merge_to_whole(self):
        """Satellite of the parallel runtime: metrics from two half
        sweeps merged equal one whole sweep's metrics (counters are
        deterministic work counts; wall-time histograms are timing and
        are compared by observation count only)."""
        from repro.telemetry import merge_all

        whole = SweepExecutor(max_workers=1)
        whole.run(GRID)
        halves = [SweepExecutor(max_workers=1) for _ in range(2)]
        halves[0].run(GRID[:2])
        halves[1].run(GRID[2:])

        merged = merge_all([h.progress.registry for h in halves])
        assert merged.counter_values() == whole.progress.registry.counter_values()
        assert (
            merged.to_dict()["histograms"]["sweep_cell_wall_s"]["total"]
            == whole.progress.registry.to_dict()["histograms"]["sweep_cell_wall_s"][
                "total"
            ]
        )

    def test_parallel_sweep_counters_match_serial(self):
        """Cell/hotpath counters must be independent of how cells were
        scheduled; only the source labels may differ."""

        def work_counters(reg):
            return {
                k: v for k, v in reg.counter_values().items()
                if k == "sweep_cells_total" or k.startswith("hotpath_")
            }

        serial = SweepExecutor(max_workers=1)
        serial.run(GRID)
        parallel = SweepExecutor(max_workers=2)
        parallel.run(GRID)
        assert work_counters(parallel.progress.registry) == work_counters(
            serial.progress.registry
        )

    def test_hotpath_to_registry_prefix(self):
        from repro.runtime.profiling import HotPathCounters
        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        HotPathCounters(cycles=3, clones=2).to_registry(reg)
        assert reg.counter_values("hotpath_")["hotpath_cycles"] == 3
        assert reg.counter_values("hotpath_")["hotpath_clones"] == 2


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3)
        assert p.delay_for(1) == 0.0  # first attempt is never delayed
        assert p.delay_for(2) == pytest.approx(0.1)
        assert p.delay_for(3) == pytest.approx(0.2)
        assert p.delay_for(4) == pytest.approx(0.3)  # capped
        assert p.delay_for(9) == pytest.approx(0.3)
        # Jitterless: the schedule is a pure function of the attempt.
        assert [p.delay_for(n) for n in range(1, 6)] == [
            p.delay_for(n) for n in range(1, 6)
        ]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(on_exhausted="explode")

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1

    def test_retryable_classification(self):
        from concurrent.futures.process import BrokenProcessPool
        from repro.runtime.faults import CorruptResultError, InjectedFaultError

        p = RetryPolicy()
        for exc in (InjectedFaultError("x"), CorruptResultError("x"),
                    BrokenProcessPool("x"), SweepTimeoutError("x")):
            assert p.is_retryable(exc)
        assert not p.is_retryable(ValueError("x"))


class _FakeFuture:
    def __init__(self):
        self._cancelled = False

    def result(self, timeout=None):
        import concurrent.futures

        raise concurrent.futures.TimeoutError()

    def cancel(self):
        self._cancelled = True
        return True

    def done(self):
        return False

    def cancelled(self):
        return self._cancelled

    def exception(self):
        return None


class _FakePool:
    """Records shutdown arguments; every submitted future times out."""

    instances = []

    def __init__(self, max_workers=None):
        self.futures = []
        self.shutdown_calls = []
        _FakePool.instances.append(self)

    def submit(self, fn, *args, **kwargs):
        fut = _FakeFuture()
        self.futures.append(fut)
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})


class TestTimeoutReapsPool:
    """Bugfix: a timed-out sweep must cancel outstanding futures and shut
    the pool down with ``cancel_futures=True`` instead of leaking busy
    workers behind the raised SweepTimeoutError."""

    def test_timeout_cancels_and_shuts_down(self, monkeypatch):
        import concurrent.futures

        _FakePool.instances.clear()
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _FakePool
        )
        ex = SweepExecutor(max_workers=2, task_timeout_s=0.01, retry=NO_RETRY)
        with pytest.raises(SweepTimeoutError):
            ex.run(GRID)
        (pool,) = _FakePool.instances
        assert any(
            c == {"wait": False, "cancel_futures": True} for c in pool.shutdown_calls
        ), pool.shutdown_calls
        # Every future except the one being collected was cancelled.
        assert sum(1 for f in pool.futures if f.cancelled()) == len(GRID) - 1

    def test_timeout_with_retries_exhausts_and_records(self, monkeypatch):
        """All-timeout grid + on_exhausted='record': the sweep completes
        with FailedCell markers instead of dying, and every pool was
        reaped with cancel_futures=True."""
        import concurrent.futures

        from repro.runtime.executor import FailedCell

        _FakePool.instances.clear()
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _FakePool
        )
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, serial_final_attempt=False,
            on_exhausted="record",
        )
        ex = SweepExecutor(max_workers=2, task_timeout_s=0.01, retry=policy)
        results = ex.run(GRID)
        assert all(isinstance(r, FailedCell) for r in results)
        assert not any(results)  # FailedCell is falsy
        assert ex.progress.failures == len(GRID)
        assert ex.progress.retries >= 1
        for pool in _FakePool.instances:
            assert any(c["cancel_futures"] for c in pool.shutdown_calls)
