"""Compute unit: scheduling, barriers, dispatch, epoch stats, snapshots."""

import pytest

from repro.config import GpuConfig, MemoryConfig
from repro.gpu.cu import ComputeUnit
from repro.gpu.isa import Program, ProgramBuilder, barrier, branch, endpgm, load, valu, waitcnt
from repro.gpu.memory import MemorySubsystem


def make_cu(waves_per_cu=4, issue_width=2):
    cfg = GpuConfig(
        n_cus=1,
        waves_per_cu=waves_per_cu,
        issue_width=issue_width,
        memory=MemoryConfig(n_l2_banks=2),
    )
    return ComputeUnit(0, cfg), MemorySubsystem(cfg.memory)


def compute_program(n=10):
    return Program(tuple([valu() for _ in range(n)]) + (endpgm(),))


def enqueue(cu, program, wg_id=0, n_waves=2):
    cu.enqueue_workgroup([(wg_id, w, program) for w in range(n_waves)])
    cu.try_dispatch(0.0)


class TestDispatch:
    def test_whole_workgroup_dispatched(self):
        cu, _ = make_cu(waves_per_cu=4)
        enqueue(cu, compute_program(), n_waves=3)
        assert cu.resident_wave_count == 3

    def test_workgroup_waits_for_room(self):
        cu, _ = make_cu(waves_per_cu=4)
        enqueue(cu, compute_program(), wg_id=0, n_waves=3)
        enqueue(cu, compute_program(), wg_id=1, n_waves=3)
        # Second workgroup (3 waves) does not fit in the remaining 1 slot.
        assert cu.resident_wave_count == 3
        assert len(cu.pending_workgroups) == 1

    def test_idle_when_empty(self):
        cu, _ = make_cu()
        assert cu.idle
        enqueue(cu, compute_program())
        assert not cu.idle


class TestExecution:
    def test_compute_program_runs_to_completion(self):
        cu, mem = make_cu()
        enqueue(cu, compute_program(20), n_waves=2)
        cu.begin_epoch(0.0)
        cu.run_until(10_000.0, mem)
        assert cu.idle
        assert cu.stats.committed == 40

    def test_commit_rate_scales_with_frequency(self):
        counts = {}
        for f in (1.3, 2.2):
            cu, mem = make_cu()
            cu.frequency_ghz = f
            enqueue(cu, compute_program(5000), n_waves=2)
            cu.begin_epoch(0.0)
            cu.run_until(1_000.0, mem)
            counts[f] = cu.stats.committed
        assert counts[2.2] > counts[1.3] * 1.4

    def test_oldest_first_priority(self):
        """With issue width 1 and many compute waves, the oldest wave
        makes the most progress."""
        cu, mem = make_cu(waves_per_cu=4, issue_width=1)
        enqueue(cu, compute_program(5000), n_waves=4)
        cu.begin_epoch(0.0)
        cu.run_until(500.0, mem)
        commits = [wf.stats.committed for wf in cu.waves]
        assert commits[0] >= max(commits[1:])

    def test_memory_program_stalls(self):
        b = ProgramBuilder()
        top = b.label()
        b.emit(load(0.0, 0.5), waitcnt(0))
        b.loop_back(top, trips=100)
        prog = b.build()
        cu, mem = make_cu()
        enqueue(cu, prog, n_waves=2)
        cu.begin_epoch(0.0)
        cu.run_until(1_000.0, mem)
        cu.settle_epoch(1_000.0)
        total_stall = sum(wf.stats.stall_ns for wf in cu.waves)
        assert total_stall > 500.0

    def test_waitcnt_with_target_allows_overlap(self):
        """waitcnt(1) lets one load stay in flight: finishes earlier than
        a full drain with waitcnt(0)."""

        def run(target):
            b = ProgramBuilder()
            top = b.label()
            b.emit(load(0.0, 0.5), load(0.0, 0.5), waitcnt(target))
            b.loop_back(top, trips=50)
            prog = b.build()
            cu, mem = make_cu()
            enqueue(cu, prog, n_waves=1)
            cu.begin_epoch(0.0)
            cu.run_until(100_000.0, mem)
            assert cu.idle
            return cu.last_retire_time

        assert run(1) < run(0)


class TestBarrier:
    def test_barrier_synchronises_workgroup(self):
        # One wave computes a long time before the barrier; the other
        # arrives immediately. Both must pass together.
        long_prog = Program(tuple([valu() for _ in range(100)]) + (barrier(), endpgm()))
        cu, mem = make_cu()
        cu.enqueue_workgroup([(0, 0, long_prog), (0, 1, Program((barrier(), endpgm())))])
        cu.try_dispatch(0.0)
        cu.begin_epoch(0.0)
        cu.run_until(50.0, mem)  # long wave still computing
        fast = [wf for wf in cu.waves if len(wf.program) == 2][0]
        assert fast.blocked_barrier
        cu.run_until(100_000.0, mem)
        assert cu.idle

    def test_barrier_releases_when_last_wave_exits(self):
        """A wave that ENDs while its sibling waits at a barrier must not
        deadlock the sibling."""
        ends = Program((endpgm(),))
        waits = Program((barrier(), endpgm()))
        cu, mem = make_cu()
        cu.enqueue_workgroup([(0, 0, waits), (0, 1, ends)])
        cu.try_dispatch(0.0)
        cu.begin_epoch(0.0)
        cu.run_until(10_000.0, mem)
        assert cu.idle

    def test_independent_workgroups_unaffected(self):
        waits = Program((barrier(), endpgm()))
        go = compute_program(10)
        cu, mem = make_cu(waves_per_cu=4)
        cu.enqueue_workgroup([(0, 0, waits), (0, 1, waits)])
        cu.enqueue_workgroup([(1, 0, go)])
        cu.try_dispatch(0.0)
        cu.begin_epoch(0.0)
        cu.run_until(10_000.0, mem)
        assert cu.idle


class TestEpochStats:
    def test_begin_epoch_resets_wave_stats(self):
        cu, mem = make_cu()
        enqueue(cu, compute_program(5000), n_waves=2)
        cu.begin_epoch(0.0)
        cu.run_until(500.0, mem)
        first = cu.waves[0].stats.committed
        assert first > 0
        cu.begin_epoch(500.0)
        assert cu.waves[0].stats.committed == 0
        assert cu.stats.committed == 0

    def test_epoch_start_pc_recorded(self):
        cu, mem = make_cu()
        enqueue(cu, compute_program(5000), n_waves=1)
        cu.begin_epoch(0.0)
        cu.run_until(500.0, mem)
        pc = cu.waves[0].pc_idx
        cu.begin_epoch(500.0)
        assert cu.waves[0].stats.epoch_start_pc_idx == pc

    def test_activity_counters(self):
        cu, mem = make_cu()
        enqueue(cu, compute_program(5000), n_waves=2)
        cu.begin_epoch(0.0)
        cu.run_until(1000.0, mem)
        assert cu.stats.issued == cu.stats.committed
        assert cu.stats.active_cycles > 0

    def test_retire_records_time(self):
        cu, mem = make_cu()
        enqueue(cu, compute_program(10), n_waves=1)
        cu.begin_epoch(0.0)
        cu.run_until(10_000.0, mem)
        assert 0.0 < cu.last_retire_time < 10_000.0


class TestResidencyStructures:
    def test_pending_workgroups_is_fifo_deque(self):
        from collections import deque

        cu, mem = make_cu(waves_per_cu=2)
        for wg in range(4):
            cu.enqueue_workgroup([(wg, 0, compute_program(5)), (wg, 1, compute_program(5))])
        cu.try_dispatch(0.0)
        assert isinstance(cu.pending_workgroups, deque)
        # One workgroup resident, the rest queued in arrival order.
        assert [group[0][0] for group in cu.pending_workgroups] == [1, 2, 3]
        cu.begin_epoch(0.0)
        cu.run_until(100_000.0, mem)
        assert cu.idle  # every queued workgroup eventually dispatched

    def test_wave_position_map_tracks_retires(self):
        """_retire_wave removes via the index map; the map must stay
        exactly {wf_id: list position} through arbitrary retire order."""
        progs = [compute_program(n) for n in (3, 9, 1, 6)]
        cu, mem = make_cu(waves_per_cu=4)
        cu.enqueue_workgroup([(0, w, progs[w]) for w in range(4)])
        cu.try_dispatch(0.0)
        cu.begin_epoch(0.0)
        t = 0.0
        while not cu.idle:
            t += 2.0
            cu.run_until(t, mem)
            assert cu._wave_pos == {wf.wf_id: i for i, wf in enumerate(cu.waves)}
        assert cu._wave_pos == {}

    def test_capture_restore_round_trip(self):
        b = ProgramBuilder()
        top = b.label()
        b.emit(valu(), load(0.5, 0.5), waitcnt(0))
        b.loop_back(top, trips=300)
        prog = b.build()
        cu, mem = make_cu()
        enqueue(cu, prog, n_waves=3)
        cu.begin_epoch(0.0)
        cu.run_until(700.0, mem)
        state = cu.capture()
        mem_state = mem.capture()
        cu.run_until(1500.0, mem)
        first = (cu.stats.committed, [w.pc_idx for w in cu.waves], cu.now)
        cu.restore_capture(state)
        mem.restore_capture(mem_state)
        cu.run_until(1500.0, mem)
        assert (cu.stats.committed, [w.pc_idx for w in cu.waves], cu.now) == first


class TestClone:
    def test_clone_runs_identically(self):
        b = ProgramBuilder()
        top = b.label()
        b.emit(valu(), load(0.5, 0.5), waitcnt(0), valu())
        b.loop_back(top, trips=200)
        prog = b.build()
        cu, mem = make_cu()
        enqueue(cu, prog, n_waves=3)
        cu.begin_epoch(0.0)
        cu.run_until(700.0, mem)
        cu2, mem2 = cu.clone(), mem.clone()
        cu.run_until(1500.0, mem)
        cu2.run_until(1500.0, mem2)
        assert cu.stats.committed == cu2.stats.committed
        assert [w.pc_idx for w in cu.waves] == [w.pc_idx for w in cu2.waves]

    def test_clone_isolated(self):
        cu, mem = make_cu()
        enqueue(cu, compute_program(100), n_waves=2)
        cu.begin_epoch(0.0)
        snap = cu.clone()
        cu.run_until(1000.0, mem)
        assert snap.stats.committed == 0
