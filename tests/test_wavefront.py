"""Wavefront state machine: control flow, blocking, stall accounting."""

import pytest

from repro.gpu.isa import Program, branch, endpgm, valu
from repro.gpu.wavefront import Wavefront


def make_wave(program=None, age=0):
    program = program or Program((valu(), valu(), endpgm()))
    return Wavefront(wf_id=1, workgroup_id=0, wave_in_group=0, program=program, age=age)


class TestControlFlow:
    def test_advance_pc(self):
        wf = make_wave()
        wf.advance_pc()
        assert wf.pc_idx == 1

    def test_branch_taken_until_exhausted(self):
        prog = Program((valu(), branch(0, 2), endpgm()))
        wf = make_wave(prog)
        wf.pc_idx = 1
        wf.take_branch(1, prog[1])
        assert wf.pc_idx == 0  # first iteration jumps back
        wf.pc_idx = 1
        wf.take_branch(1, prog[1])
        assert wf.pc_idx == 0  # second iteration
        wf.pc_idx = 1
        wf.take_branch(1, prog[1])
        assert wf.pc_idx == 2  # exhausted: falls through

    def test_branch_counter_resets_for_reentry(self):
        prog = Program((valu(), branch(0, 1), endpgm()))
        wf = make_wave(prog)
        for _ in range(2):
            wf.pc_idx = 1
            wf.take_branch(1, prog[1])  # taken
            wf.pc_idx = 1
            wf.take_branch(1, prog[1])  # falls through, counter resets
            assert wf.pc_idx == 2


class TestBlocking:
    def test_waitcnt_blocks_and_unblocks(self):
        wf = make_wave()
        wf.outstanding = 2
        wf.block_wait(0, now=100.0)
        assert wf.blocked
        assert not wf.waitcnt_satisfied()
        wf.outstanding = 0
        assert wf.waitcnt_satisfied()
        wf.unblock_wait(now=250.0, epoch_start=0.0)
        assert not wf.blocked
        assert wf.stats.stall_ns == pytest.approx(150.0)
        assert wf.pc_idx == 1  # the waitcnt retired

    def test_stall_clipped_to_epoch(self):
        wf = make_wave()
        wf.outstanding = 1
        wf.block_wait(0, now=100.0)
        wf.outstanding = 0
        # Epoch began after the block started: only in-epoch time counts.
        wf.unblock_wait(now=350.0, epoch_start=200.0)
        assert wf.stats.stall_ns == pytest.approx(150.0)

    def test_store_stall_tracked_separately(self):
        wf = make_wave()
        wf.outstanding = 1
        wf.outstanding_stores = 1
        wf.block_wait(0, now=0.0)
        wf.unblock_wait(now=80.0, epoch_start=0.0)
        assert wf.stats.store_stall_ns == pytest.approx(80.0)

    def test_barrier_stall_accounted(self):
        wf = make_wave()
        wf.block_barrier(now=10.0)
        wf.unblock_barrier(now=60.0, epoch_start=0.0)
        assert wf.stats.barrier_stall_ns == pytest.approx(50.0)
        assert wf.pc_idx == 1

    def test_settle_charges_partial_stall(self):
        wf = make_wave()
        wf.outstanding = 1
        wf.block_wait(0, now=300.0)
        wf.settle_stall(now=1000.0, epoch_start=0.0)
        assert wf.stats.stall_ns == pytest.approx(700.0)
        # Settling again at the same time adds nothing.
        wf.settle_stall(now=1000.0, epoch_start=0.0)
        assert wf.stats.stall_ns == pytest.approx(700.0)

    def test_is_ready_respects_block_and_time(self):
        wf = make_wave()
        assert wf.is_ready(0.0)
        wf.ready_at = 5.0
        assert not wf.is_ready(4.0)
        assert wf.is_ready(5.0)
        wf.block_barrier(5.0)
        assert not wf.is_ready(5.0)


class TestMemoryBookkeeping:
    def test_leading_load_measured(self):
        wf = make_wave()
        wf.note_mem_issue(now=0.0, completion=100.0, is_store=False)
        assert wf.stats.leading_load_ns == pytest.approx(100.0)
        # Second overlapping load is not leading.
        wf.note_mem_issue(now=10.0, completion=110.0, is_store=False)
        assert wf.stats.leading_load_ns == pytest.approx(100.0)

    def test_critical_path_counts_non_overlap(self):
        wf = make_wave()
        wf.note_mem_issue(now=0.0, completion=100.0, is_store=False)
        # Fully overlapped access adds only its extension beyond 100.
        wf.note_mem_issue(now=10.0, completion=130.0, is_store=False)
        assert wf.stats.critical_mem_ns == pytest.approx(130.0)

    def test_completion_underflow_raises(self):
        wf = make_wave()
        with pytest.raises(RuntimeError):
            wf.note_mem_complete(is_store=False)

    def test_outstanding_counts(self):
        wf = make_wave()
        wf.note_mem_issue(0.0, 50.0, is_store=True)
        wf.note_mem_issue(0.0, 60.0, is_store=False)
        assert wf.outstanding == 2
        assert wf.outstanding_stores == 1
        wf.note_mem_complete(is_store=True)
        assert wf.outstanding_stores == 0


class TestHitDraws:
    def test_deterministic(self):
        a = make_wave()
        b = make_wave()
        seq_a = [a.draw_hits(7, 0.5, 0.5, 0.1) for _ in range(20)]
        seq_b = [b.draw_hits(7, 0.5, 0.5, 0.1) for _ in range(20)]
        assert seq_a == seq_b

    def test_zero_jitter_is_static_per_pc(self):
        wf = make_wave()
        outcomes = {wf.draw_hits(9, 0.5, 0.5, 0.0)[:2] for _ in range(50)}
        assert len(outcomes) == 1

    def test_rate_realised_across_pcs(self):
        wf = make_wave()
        hits = sum(wf.draw_hits(pc, 0.7, 0.5, 0.0)[0] for pc in range(500))
        assert 0.6 < hits / 500 < 0.8

    def test_jittered_rate_realised_over_visits(self):
        wf = make_wave()
        hits = sum(wf.draw_hits(3, 0.4, 0.5, 1.0)[0] for _ in range(500))
        assert 0.3 < hits / 500 < 0.5

    def test_visit_counter_returned(self):
        wf = make_wave()
        assert wf.draw_hits(3, 0.5, 0.5, 0.0)[2] == 0
        assert wf.draw_hits(3, 0.5, 0.5, 0.0)[2] == 1
        assert wf.draw_hits(4, 0.5, 0.5, 0.0)[2] == 0


class TestClone:
    def test_clone_is_deep_for_mutable_state(self):
        wf = make_wave()
        wf.loop_counters[3] = 7
        wf.pc_visits[5] = 2
        c = wf.clone()
        c.loop_counters[3] = 99
        c.pc_visits[5] = 99
        assert wf.loop_counters[3] == 7
        assert wf.pc_visits[5] == 2

    def test_clone_preserves_stats_independently(self):
        wf = make_wave()
        wf.stats.stall_ns = 42.0
        c = wf.clone()
        c.stats.stall_ns = 1.0
        assert wf.stats.stall_ns == pytest.approx(42.0)

    def test_clone_copies_scalars(self):
        wf = make_wave()
        wf.pc_idx = 3
        wf.outstanding = 2
        wf.ready_at = 55.5
        c = wf.clone()
        assert c.pc_idx == 3
        assert c.outstanding == 2
        assert c.ready_at == pytest.approx(55.5)
