"""Memory subsystem: latency composition, queueing, thrash, snapshots."""

import pytest

from repro.config import MemoryConfig
from repro.gpu.memory import MemorySubsystem


def make_mem(**overrides):
    return MemorySubsystem(MemoryConfig(**overrides))


class TestLatency:
    def test_l2_hit_latency_composition(self):
        mem = make_mem()
        cfg = mem.config
        req = mem.request(0.0, l2_hit=True, bank_key=1)
        expected = (
            cfg.l2_interconnect_ns + cfg.l2_service_ns + cfg.l2_hit_extra_ns + cfg.l2_interconnect_ns
        )
        assert req.completion_ns == pytest.approx(expected)
        assert req.level == "l2"

    def test_dram_latency_longer_than_l2(self):
        mem = make_mem()
        hit = mem.request(0.0, l2_hit=True, bank_key=1).completion_ns
        miss = make_mem().request(0.0, l2_hit=False, bank_key=1).completion_ns
        assert miss > hit

    def test_dram_level_reported(self):
        mem = make_mem()
        assert mem.request(0.0, l2_hit=False, bank_key=1).level == "dram"


class TestQueueing:
    def test_same_bank_requests_queue(self):
        mem = make_mem(n_l2_banks=2)
        first = mem.request(0.0, l2_hit=True, bank_key=2)
        second = mem.request(0.0, l2_hit=True, bank_key=2)  # same bank
        assert second.queue_ns > 0
        assert second.completion_ns > first.completion_ns

    def test_different_banks_do_not_queue(self):
        mem = make_mem(n_l2_banks=4)
        mem.request(0.0, l2_hit=True, bank_key=0)
        other = mem.request(0.0, l2_hit=True, bank_key=1)
        assert other.queue_ns == pytest.approx(0.0)

    def test_bank_key_is_pure_function_of_access(self):
        """The same access must hit the same bank regardless of what
        other traffic arrived first (no global-order coupling)."""
        a = make_mem(n_l2_banks=4)
        b = make_mem(n_l2_banks=4)
        b.request(0.0, l2_hit=True, bank_key=77)  # extra traffic first
        lat_a = a.request(10.0, l2_hit=True, bank_key=5).completion_ns
        lat_b = b.request(10.0, l2_hit=True, bank_key=5).completion_ns
        # Same bank; only possible difference is queueing from the extra
        # request, which used a different bank here.
        assert lat_a == pytest.approx(lat_b)

    def test_queue_drains_over_time(self):
        mem = make_mem(n_l2_banks=1)
        mem.request(0.0, l2_hit=True, bank_key=0)
        late = mem.request(1e6, l2_hit=True, bank_key=0)
        assert late.queue_ns == pytest.approx(0.0)


class TestThrash:
    def test_no_thrash_at_low_rate(self):
        mem = make_mem()
        for t in range(0, 10000, 1000):
            mem.request(float(t), l2_hit=True, bank_key=t)
        assert mem.thrash_degradation() == pytest.approx(0.0)

    def test_thrash_at_high_rate(self):
        mem = make_mem(l2_thrash_rate_per_ns=0.01)
        for i in range(200):
            mem.request(i * 0.5, l2_hit=True, bank_key=i)
        assert mem.thrash_degradation() > 0.0

    def test_thrash_converts_hits_to_misses(self):
        mem = make_mem(l2_thrash_rate_per_ns=0.001, l2_thrash_max_degradation=1.0)
        levels = set()
        for i in range(300):
            levels.add(mem.request(i * 0.1, l2_hit=True, bank_key=i).level)
        assert "dram" in levels  # some hits degraded to misses

    def test_degradation_capped(self):
        mem = make_mem(l2_thrash_rate_per_ns=1e-6, l2_thrash_max_degradation=0.6)
        for i in range(300):
            mem.request(i * 0.01, l2_hit=True, bank_key=i)
        assert mem.thrash_degradation() <= 0.6 + 1e-9


class TestClone:
    def test_clone_replays_identically(self):
        mem = make_mem(n_l2_banks=2)
        for i in range(10):
            mem.request(i * 3.0, l2_hit=(i % 2 == 0), bank_key=i)
        snap = mem.clone()
        a = [mem.request(100.0 + i, l2_hit=True, bank_key=i).completion_ns for i in range(5)]
        b = [snap.request(100.0 + i, l2_hit=True, bank_key=i).completion_ns for i in range(5)]
        assert a == b

    def test_clone_is_independent(self):
        mem = make_mem()
        snap = mem.clone()
        mem.request(0.0, l2_hit=True, bank_key=0)
        assert snap.request_counter == 0
