"""Validation subsystem: auditors, differentials, property suites.

Covers the three layers of :mod:`repro.validation`:

* every shipped invariant auditor catches a deliberately corrupted
  artifact (fixture-driven, one corruption per check name);
* the differential machinery diffs RunResults / record streams and the
  tiny end-to-end pairs come back identical;
* Hypothesis property suites: the real :class:`PCTable` against the
  dict-backed reference model under random op streams, prediction
  bounds, wire-codec round-trips, and residency normalisation. All
  suites run derandomised so CI failures reproduce exactly.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.core.controller import ControllerLog
from repro.core.pc_table import PCTable, PCTableConfig
from repro.core.sensitivity import LinearSensitivity
from repro.dvfs.simulation import RunResult
from repro.gpu.cu import CuEpochStats
from repro.gpu.gpu import EpochResult, WaveEpochRecord
from repro.gpu.wavefront import WavefrontStats
from repro.power.energy import EnergyBreakdown
from repro.telemetry.metrics import MetricsRegistry
from repro.validation import (
    CheckReport,
    DiffReport,
    FieldMismatch,
    audit_controller_log,
    audit_energy_breakdown,
    audit_epoch_records,
    audit_pc_table,
    audit_run_result,
    diff_run_results,
    engine_differential,
    first_divergence,
    make_task,
    oracle_fork_differential,
    record_violations,
)
from repro.validation.properties import (
    PCTableModel,
    check_sensitivity_bounds,
    epoch_result_round_trips,
    sensitivity_round_trips,
)

GRID = small_config().dvfs.frequencies_ghz

#: Deterministic, database-free settings for every property suite.
DETERMINISTIC = settings(derandomize=True, database=None, max_examples=60)


def clean_result(**over) -> RunResult:
    """A RunResult satisfying every invariant; corrupt via ``over``."""
    fields = dict(
        design="PCSTALL",
        workload="comd",
        epochs=4,
        delay_ns=3500.0,
        energy=EnergyBreakdown(
            cu_dynamic_and_leakage=10.0, memory=5.0, transitions=1.0,
            elapsed_ns=4000.0,
        ),
        prediction_accuracy=0.9,
        frequency_residency={f: (1.0 if f == 1.7 else 0.0) for f in GRID},
        total_committed=1000,
        total_transitions=3,
        pc_hit_ratio=0.95,
        completed=True,
    )
    fields.update(over)
    return RunResult(**fields)


def checks(violations):
    return {v.check for v in violations}


class TestAuditRunResult:
    def test_clean_result_has_no_violations(self):
        assert audit_run_result(clean_result(), GRID) == []

    def test_negative_energy_component(self):
        r = clean_result(energy=EnergyBreakdown(cu_dynamic_and_leakage=-1.0))
        assert "energy_component_negative" in checks(audit_run_result(r, GRID))

    def test_negative_count(self):
        r = clean_result(total_committed=-5)
        assert "count_negative" in checks(audit_run_result(r, GRID))

    def test_accuracy_above_one(self):
        r = clean_result(prediction_accuracy=1.5)
        assert "ratio_out_of_bounds" in checks(audit_run_result(r, GRID))

    def test_residency_sum_below_one(self):
        # The symptom of the float-keyed residency bug: a decision
        # counted in the denominator but dropped from every bucket.
        r = clean_result(
            frequency_residency={f: (0.5 if f == 1.7 else 0.0) for f in GRID}
        )
        assert "residency_sum" in checks(audit_run_result(r, GRID))

    def test_residency_off_grid_key(self):
        bad = {f: 0.0 for f in GRID}
        del bad[1.7]
        bad[0.1 * 17] = 1.0  # 1.7000000000000002: on-grid after snapping
        assert audit_run_result(clean_result(frequency_residency=bad), GRID) == []
        bad2 = dict(bad)
        del bad2[0.1 * 17]
        bad2[1.75] = 1.0  # genuinely between grid points
        r = clean_result(frequency_residency=bad2)
        assert "residency_off_grid" in checks(audit_run_result(r, GRID))

    def test_residency_share_out_of_bounds(self):
        bad = {f: 0.0 for f in GRID}
        bad[1.7] = 2.0
        bad[1.3] = -1.0
        got = checks(audit_run_result(clean_result(frequency_residency=bad), GRID))
        assert "residency_share_out_of_bounds" in got

    def test_completed_delay_beyond_window(self):
        r = clean_result(delay_ns=4100.0)
        assert "delay_exceeds_window" in checks(audit_run_result(r, GRID))

    def test_truncated_run_may_exceed_window(self):
        r = clean_result(delay_ns=4100.0, completed=False)
        assert "delay_exceeds_window" not in checks(audit_run_result(r, GRID))


class TestAuditEnergyBreakdown:
    def test_clean(self):
        b = EnergyBreakdown(cu_dynamic_and_leakage=1.0, memory=2.0,
                            transitions=0.5, elapsed_ns=10.0)
        assert audit_energy_breakdown(b) == []

    def test_total_not_trusted(self):
        # The auditor recomputes the sum rather than trusting `total`,
        # so a subclass (or future cached field) that drifts is caught.
        fake = SimpleNamespace(cu_dynamic_and_leakage=1.0, memory=2.0,
                               transitions=0.0, elapsed_ns=1.0, total=99.0)
        assert "energy_total_mismatch" in checks(audit_energy_breakdown(fake))

    def test_nan_component(self):
        b = EnergyBreakdown(cu_dynamic_and_leakage=float("nan"))
        assert "energy_component_negative" in checks(audit_energy_breakdown(b))


class TestAuditControllerLog:
    def test_clean_log(self):
        log = ControllerLog()
        log.chosen_freqs.append([1.7, 1.3])
        log.predictions.append([None, None])
        assert audit_controller_log(log, GRID) == []

    def test_off_grid_decision(self):
        log = ControllerLog()
        log.chosen_freqs.append([1.75, 1.7])
        log.predictions.append([None, None])
        assert "chosen_freq_off_grid" in checks(audit_controller_log(log, GRID))

    def test_length_mismatch(self):
        log = ControllerLog()
        log.chosen_freqs.append([1.7])
        assert "log_length_mismatch" in checks(audit_controller_log(log, GRID))


class TestAuditPCTable:
    def test_real_table_is_clean(self):
        table = PCTable(PCTableConfig(n_entries=8))
        for pc in range(20):
            table.update(pc, LinearSensitivity(1.0, 2.0))
            table.lookup(pc)
        assert audit_pc_table(table) == []

    def test_hits_exceed_lookups(self):
        fake = SimpleNamespace(lookups=5, hits=9, updates=0, evictions=0,
                               occupancy=0.5)
        assert "pc_hits_exceed_lookups" in checks(audit_pc_table(fake))

    def test_evictions_exceed_updates(self):
        fake = SimpleNamespace(lookups=0, hits=0, updates=2, evictions=3,
                               occupancy=0.5)
        assert "pc_evictions_exceed_updates" in checks(audit_pc_table(fake))

    def test_negative_counter_and_bad_occupancy(self):
        fake = SimpleNamespace(lookups=-1, hits=0, updates=0, evictions=0,
                               occupancy=1.5)
        got = checks(audit_pc_table(fake))
        assert "count_negative" in got
        assert "ratio_out_of_bounds" in got


def make_stream(**over):
    """A conservation-clean telemetry stream; corrupt via ``over``."""
    records = {
        "run": {"type": "run", "workload": "w", "design": "d",
                "frequencies_ghz": list(GRID)},
        "epoch0": {"type": "epoch", "epoch": 0, "t_start_ns": 0.0,
                   "t_end_ns": 1000.0, "energy": 5.0, "committed": 100,
                   "pc_lookups": 10, "pc_hits": 8},
        "domain0": {"type": "domain", "epoch": 0, "domain": 0,
                    "freq_ghz": 1.7, "rel_error": 0.1, "actual_commits": 100},
        "epoch1": {"type": "epoch", "epoch": 1, "t_start_ns": 1000.0,
                   "t_end_ns": 2000.0, "energy": 7.0, "committed": 150,
                   "pc_lookups": 10, "pc_hits": 9},
        "domain1": {"type": "domain", "epoch": 1, "domain": 0,
                    "freq_ghz": 1.3, "rel_error": 0.0, "actual_commits": 150},
        "summary": {"type": "summary", "epochs": 2, "total_committed": 250,
                    "energy_total": 12.0, "elapsed_ns": 2000.0,
                    "delay_ns": 1800.0, "completed": True},
    }
    for name, patch in over.items():
        records[name] = {**records[name], **patch}
    return list(records.values())


class TestAuditEpochRecords:
    def test_clean_stream(self):
        assert audit_epoch_records(make_stream()) == []

    def test_backwards_epoch_window(self):
        stream = make_stream(epoch1={"t_end_ns": 500.0})
        assert "clock_not_monotone" in checks(audit_epoch_records(stream))

    def test_overlapping_epochs(self):
        stream = make_stream(epoch1={"t_start_ns": 400.0, "t_end_ns": 1400.0})
        got = checks(audit_epoch_records(stream))
        assert "clock_not_monotone" in got

    def test_committed_not_conserved(self):
        stream = make_stream(summary={"total_committed": 999})
        assert "committed_not_conserved" in checks(audit_epoch_records(stream))

    def test_energy_not_conserved(self):
        stream = make_stream(summary={"energy_total": 20.0})
        assert "epoch_energy_not_conserved" in checks(audit_epoch_records(stream))

    def test_epoch_count_mismatch(self):
        stream = make_stream(summary={"epochs": 7})
        assert "epoch_count_mismatch" in checks(audit_epoch_records(stream))

    def test_negative_epoch_energy(self):
        stream = make_stream(epoch0={"energy": -1.0}, summary={"energy_total": 6.0})
        assert "epoch_energy_negative" in checks(audit_epoch_records(stream))

    def test_per_epoch_pc_hits_exceed_lookups(self):
        stream = make_stream(epoch0={"pc_hits": 11})
        assert "pc_hits_exceed_lookups" in checks(audit_epoch_records(stream))

    def test_domain_freq_off_run_grid(self):
        stream = make_stream(domain1={"freq_ghz": 1.75})
        assert "chosen_freq_off_grid" in checks(audit_epoch_records(stream))

    def test_summary_delay_beyond_window(self):
        stream = make_stream(summary={"delay_ns": 2500.0})
        assert "delay_exceeds_window" in checks(audit_epoch_records(stream))

    def test_window_not_conserved(self):
        stream = make_stream(summary={"elapsed_ns": 3000.0, "delay_ns": 100.0})
        assert "window_not_conserved" in checks(audit_epoch_records(stream))

    def test_stream_without_summary_skips_conservation(self):
        stream = [r for r in make_stream() if r["type"] != "summary"]
        assert audit_epoch_records(stream) == []


class TestRecordViolations:
    def test_counters_routed(self):
        reg = MetricsRegistry()
        violations = audit_run_result(clean_result(total_committed=-5), GRID)
        n = record_violations(violations, reg)
        counters = reg.counter_values("validation_")
        assert n == len(violations) > 0
        assert counters["validation_violations"] == n
        assert counters["validation_violation_count_negative"] >= 1


class TestDiffRunResults:
    def test_identical(self):
        assert diff_run_results(clean_result(), clean_result()) == []

    def test_energy_component_named(self):
        b = clean_result(
            energy=EnergyBreakdown(cu_dynamic_and_leakage=10.0, memory=5.5,
                                   transitions=1.0, elapsed_ns=4000.0)
        )
        diffs = diff_run_results(clean_result(), b)
        assert [m.field for m in diffs] == ["energy.memory"]

    def test_scalar_field_named(self):
        diffs = diff_run_results(clean_result(), clean_result(epochs=5))
        assert [m.field for m in diffs] == ["epochs"]

    def test_hotpath_ignored(self):
        a = clean_result(hotpath={"cycles": 1})
        b = clean_result(hotpath={"cycles": 2})
        assert diff_run_results(a, b) == []

    def test_first_divergence_points_at_epoch(self):
        a = make_stream()
        b = make_stream(epoch1={"committed": 151}, summary={"total_committed": 251})
        assert first_divergence(a, b) == 1
        assert first_divergence(a, make_stream()) is None

    def test_first_divergence_on_length_mismatch(self):
        a = make_stream()
        b = [r for r in make_stream() if r.get("epoch") != 1]
        assert first_divergence(a, b) == 1


class TestCheckReport:
    def test_ok_logic(self):
        report = CheckReport()
        assert report.ok
        report.differentials.append(
            DiffReport(name="engine", subject="s", sides=("a", "b"))
        )
        assert report.ok
        report.differentials[0].mismatches.append(FieldMismatch("epochs", 1, 2))
        assert not report.ok

    def test_violations_fail_report(self):
        report = CheckReport(
            violations=audit_run_result(clean_result(total_committed=-1), GRID)
        )
        assert not report.ok
        assert "FAIL" in report.render()
        d = report.as_dict()
        assert d["ok"] is False and d["violations"]

    def test_cli_parser_accepts_check(self):
        from repro.cli import build_parser, cmd_check

        args = build_parser().parse_args(["check", "--deep", "--json", "r.json"])
        assert args.fn is cmd_check and args.deep and args.json == "r.json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--quick", "--deep"])


class TestDifferentialEndToEnd:
    """Tiny real pairs: slow-ish, so one small cell each."""

    def _config(self):
        return small_config(n_cus=2, waves_per_cu=4)

    def test_engine_differential_identical(self):
        task = make_task("comd", "STATIC@1.7", self._config(),
                         scale=0.05, max_epochs=8, oracle_sample_freqs=3)
        report = engine_differential(task, trace=True)
        assert report.ok, report.render()
        assert report.first_diverging_epoch is None

    def test_oracle_fork_differential_identical(self):
        from repro.workloads import build_workload, workload

        kernels = build_workload(workload("comd"), scale=0.05)
        report = oracle_fork_differential(
            kernels, self._config(), subject="comd", n_sample_freqs=3,
            warmup_epochs=2,
        )
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# Property suites (Hypothesis, derandomised)

_LINES = st.builds(
    LinearSensitivity,
    i0=st.floats(-1e6, 1e6, allow_nan=False),
    slope=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestPCTableProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 600), st.integers(0, 600), _LINES),
            max_size=150,
        ),
        weight=st.sampled_from([1.0, 0.5, 0.25]),
    )
    @DETERMINISTIC
    def test_table_matches_reference_model(self, ops, weight):
        """Random update/lookup streams: the direct-mapped table and the
        dict-backed spec agree on every returned line and counter."""
        cfg = PCTableConfig(n_entries=8, update_weight=weight)
        real, model = PCTable(cfg), PCTableModel(cfg)
        for update_pc, lookup_pc, line in ops:
            real.update(update_pc, line)
            model.update(update_pc, line)
            assert real.lookup(lookup_pc) == model.lookup(lookup_pc)
        assert (real.lookups, real.hits, real.updates, real.evictions) == (
            model.lookups, model.hits, model.updates, model.evictions
        )
        assert real.hit_ratio == model.hit_ratio
        assert real.occupancy == model.occupancy

    @given(
        pcs=st.lists(st.integers(0, 10_000), max_size=100),
        n_entries=st.sampled_from([1, 8, 128]),
    )
    @DETERMINISTIC
    def test_counter_bounds_hold(self, pcs, n_entries):
        table = PCTable(PCTableConfig(n_entries=n_entries))
        for pc in pcs:
            table.update(pc, LinearSensitivity(1.0, 1.0))
            table.lookup(pc)
        assert 0 <= table.hits <= table.lookups
        assert 0 <= table.evictions <= table.updates
        assert 0.0 <= table.hit_ratio <= 1.0
        assert 0.0 <= table.occupancy <= 1.0
        assert audit_pc_table(table) == []

    @given(pc=st.integers(0, 10_000))
    @DETERMINISTIC
    def test_lookup_after_update_same_pc_always_hits(self, pc):
        table = PCTable(PCTableConfig(n_entries=8))
        line = LinearSensitivity(3.0, -1.0)
        table.update(pc, line)
        assert table.lookup(pc) == line
        assert table.hits == 1


class TestSensitivityProperties:
    @given(
        line=_LINES,
        freqs=st.lists(st.floats(0.5, 3.0, allow_nan=False),
                       min_size=2, max_size=10),
    )
    @DETERMINISTIC
    def test_prediction_bounds(self, line, freqs):
        assert check_sensitivity_bounds(line, freqs) == []

    @given(line=_LINES)
    @DETERMINISTIC
    def test_wire_round_trip(self, line):
        assert sensitivity_round_trips(line)


_NN_INT = st.integers(0, 10**9)
_NS = st.floats(0, 1e9, allow_nan=False, allow_infinity=False)

_CU_STATS = st.builds(
    CuEpochStats,
    committed=_NN_INT, committed_compute=_NN_INT, committed_memory=_NN_INT,
    issued=_NN_INT, active_cycles=_NN_INT, core_busy_ns=_NS,
    loads=_NN_INT, stores=_NN_INT,
)

_WF_STATS = st.builds(
    WavefrontStats,
    committed=_NN_INT, committed_compute=_NN_INT, committed_memory=_NN_INT,
    stall_ns=_NS, store_stall_ns=_NS, barrier_stall_ns=_NS,
    leading_load_ns=_NS, critical_mem_ns=_NS, busy_ns=_NS,
    epoch_start_pc_idx=st.integers(0, 10_000),
    loads_issued=_NN_INT, stores_issued=_NN_INT,
)


@st.composite
def _epoch_results(draw):
    n_cus = draw(st.integers(1, 3))
    t_start = draw(_NS)
    duration = draw(st.floats(1.0, 1e6, allow_nan=False))
    cu_stats = tuple(draw(_CU_STATS) for _ in range(n_cus))
    wave_records = tuple(
        tuple(
            WaveEpochRecord(
                wf_id=w, age_rank=draw(st.integers(0, 7)),
                start_pc_idx=draw(st.integers(0, 10_000)),
                next_pc_idx=draw(st.integers(0, 10_000)),
                stats=draw(_WF_STATS),
            )
            for w in range(draw(st.integers(0, 2)))
        )
        for _ in range(n_cus)
    )
    return EpochResult(
        t_start=t_start,
        t_end=t_start + duration,
        frequencies_ghz=tuple(
            draw(st.sampled_from(GRID)) for _ in range(n_cus)
        ),
        cu_stats=cu_stats,
        wave_records=wave_records,
        transitions=draw(st.integers(0, 10)),
    )


class TestWireCodecProperties:
    @given(result=_epoch_results())
    @DETERMINISTIC
    def test_epoch_result_round_trip(self, result):
        assert epoch_result_round_trips(result)

    def test_real_epoch_round_trips(self):
        from repro.gpu.gpu import Gpu
        from repro.gpu.kernel import Kernel, WorkgroupGeometry

        from helpers import make_loop_program

        cfg = small_config(n_cus=2, waves_per_cu=4)
        gpu = Gpu(cfg.gpu, 1.7)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=500),
                               WorkgroupGeometry(4, 2))
        )
        assert epoch_result_round_trips(gpu.run_epoch(1000.0))


class TestResidencyProperties:
    @given(
        epochs=st.lists(
            st.lists(st.sampled_from(GRID), min_size=1, max_size=4),
            max_size=20,
        ),
        noise=st.floats(-1e-7, 1e-7, allow_nan=False),
    )
    @DETERMINISTIC
    def test_normalised_over_grid_despite_float_noise(self, epochs, noise):
        log = ControllerLog()
        for freqs in epochs:
            log.chosen_freqs.append([f + noise for f in freqs])
            log.predictions.append([None] * len(freqs))
        res = log.frequency_residency(GRID)
        assert set(res) == set(GRID)
        assert sum(res.values()) == pytest.approx(1.0 if epochs else 0.0)
        assert all(0.0 <= share <= 1.0 for share in res.values())
