"""Public API surface: names users import must exist and stay stable."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_names(self):
        from repro import (  # noqa: F401
            DESIGN_NAMES,
            DvfsSimulation,
            OracleSampler,
            make_controller,
            paper_config,
            small_config,
        )

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.config",
        "repro.cli",
        "repro.gpu",
        "repro.gpu.isa",
        "repro.gpu.kernel",
        "repro.gpu.wavefront",
        "repro.gpu.memory",
        "repro.gpu.cu",
        "repro.gpu.gpu",
        "repro.gpu.clock",
        "repro.power",
        "repro.power.model",
        "repro.power.energy",
        "repro.core",
        "repro.core.sensitivity",
        "repro.core.estimators",
        "repro.core.pc_table",
        "repro.core.predictors",
        "repro.core.objectives",
        "repro.core.controller",
        "repro.core.hardware",
        "repro.dvfs",
        "repro.dvfs.oracle",
        "repro.dvfs.simulation",
        "repro.dvfs.designs",
        "repro.dvfs.hierarchy",
        "repro.dvfs.colocation",
        "repro.workloads",
        "repro.workloads.generator",
        "repro.workloads.suite",
        "repro.analysis",
        "repro.analysis.phases",
        "repro.analysis.linearity",
        "repro.analysis.experiments",
        "repro.analysis.trace_io",
        "repro.analysis.report",
        "repro.runtime",
        "repro.runtime.executor",
        "repro.runtime.cache",
        "repro.runtime.checkpoint",
        "repro.runtime.distributed",
        "repro.runtime.faults",
        "repro.runtime.progress",
        "repro.runtime.profiling",
        "repro.runtime.wire",
        "repro.bench",
        "repro.bench.baseline",
        "repro.bench.micro",
        "repro.learn",
        "repro.learn.features",
        "repro.learn.dataset",
        "repro.learn.models",
        "repro.learn.registry",
        "repro.learn.evaluate",
        "repro.obs",
        "repro.obs.trace",
        "repro.obs.drift",
        "repro.obs.prom",
        "repro.obs.log",
        "repro.obs.monitor",
    ],
)
def test_module_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


class TestSubpackageSurfaces:
    def test_core_has_paper_vocabulary(self):
        import repro.core as core

        for name in ("LinearSensitivity", "PCTable", "DvfsController",
                     "EDnPObjective", "storage_overhead_bytes"):
            assert hasattr(core, name)

    def test_dvfs_has_designs_and_oracle(self):
        import repro.dvfs as dvfs

        assert "PCSTALL" in dvfs.DESIGN_NAMES
        assert "HISTORY" in dvfs.EXTENSION_DESIGNS

    def test_workloads_suite_size(self):
        import repro.workloads as w

        assert len(w.WORKLOADS) == 16
