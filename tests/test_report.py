"""ASCII reporting helpers."""

import pytest

from repro.analysis.report import format_series, format_table, geometric_mean


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bbbb", 2.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_precision(self):
        out = format_table(["v"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.2345" not in out

    def test_non_float_cells_verbatim(self):
        out = format_table(["a", "b"], [["xyz", 7]])
        assert "xyz" in out and "7" in out


class TestFormatSeries:
    def test_mapping_rendered(self):
        out = format_series({1.3: 0.5, 2.2: 0.9}, key_header="GHz", value_header="share")
        assert "GHz" in out
        assert "1.3" in out and "0.9" in out


class TestSparkline:
    def test_empty(self):
        from repro.analysis.report import sparkline

        assert sparkline([]) == ""

    def test_scales_to_max(self):
        from repro.analysis.report import sparkline

        s = sparkline([0.0, 5.0, 10.0])
        assert len(s) == 3
        assert s[0] == " "
        assert s[2] == "@"

    def test_width_truncates(self):
        from repro.analysis.report import sparkline

        assert len(sparkline([1.0] * 100, width=10)) == 10


class TestBarChart:
    def test_bars_proportional(self):
        from repro.analysis.report import bar_chart

        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty(self):
        from repro.analysis.report import bar_chart

        assert bar_chart({}) == ""


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, -1.0, 4.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0
