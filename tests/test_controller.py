"""DVFS controller: decide/observe flow, logs, residency, power feedback."""

import pytest

from repro.config import small_config
from repro.core.controller import ControllerLog, DvfsController
from repro.core.objectives import EDnPObjective, StaticObjective
from repro.core.predictors import StaticPredictor
from repro.core.sensitivity import LinearSensitivity
from repro.dvfs.designs import make_controller
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


@pytest.fixture
def cfg():
    return small_config(n_cus=2, waves_per_cu=4)


def run_gpu_epoch(cfg, freq=1.7):
    gpu = Gpu(cfg.gpu, freq)
    gpu.load_kernel(
        Kernel.homogeneous(make_loop_program(trips=2000), WorkgroupGeometry(4, 2))
    )
    return gpu, gpu.run_epoch(1000.0)


class TestDecide:
    def test_first_decision_holds_reference(self, cfg):
        ctrl = make_controller("PCSTALL", cfg)
        freqs = ctrl.decide()
        assert freqs == [cfg.dvfs.reference_freq_ghz] * cfg.gpu.n_domains

    def test_static_controller_pins_frequency(self, cfg):
        ctrl = make_controller("STATIC@1.3", cfg)
        for _ in range(3):
            assert ctrl.decide() == [1.3, 1.3]

    def test_decisions_logged(self, cfg):
        ctrl = make_controller("STATIC@1.7", cfg)
        ctrl.decide()
        ctrl.decide()
        assert len(ctrl.log.chosen_freqs) == 2
        assert len(ctrl.log.predictions) == 2

    def test_decide_after_observe_uses_predictions(self, cfg):
        gpu, result = run_gpu_epoch(cfg)
        ctrl = make_controller("STALL", cfg)
        ctrl.decide()
        ctrl.observe(result)
        freqs = ctrl.decide()
        assert all(f in cfg.dvfs.frequencies_ghz for f in freqs)
        assert all(line is not None for line in ctrl.last_predictions())


class TestObserve:
    def test_observe_feeds_objective_power(self, cfg):
        gpu, result = run_gpu_epoch(cfg)
        obj = EDnPObjective(2)
        ctrl = DvfsController(StaticPredictor(2), obj, cfg)
        ctrl.observe(result)
        # measured power should be positive and plausible
        p = ctrl._measured_domain_power(result, 0)
        assert p > 0.0

    def test_measured_power_higher_at_higher_frequency(self, cfg):
        _, lo = run_gpu_epoch(cfg, freq=1.3)
        _, hi = run_gpu_epoch(cfg, freq=2.2)
        ctrl = DvfsController(StaticPredictor(2), StaticObjective(1.7), cfg)
        assert ctrl._measured_domain_power(hi, 0) > ctrl._measured_domain_power(lo, 0)


class TestResidency:
    def test_residency_sums_to_one(self, cfg):
        ctrl = make_controller("STATIC@1.3", cfg)
        for _ in range(5):
            ctrl.decide()
        res = ctrl.log.frequency_residency(cfg.dvfs.frequencies_ghz)
        assert sum(res.values()) == pytest.approx(1.0)
        assert res[1.3] == pytest.approx(1.0)

    def test_residency_empty_log(self, cfg):
        log = ControllerLog()
        res = log.frequency_residency(cfg.dvfs.frequencies_ghz)
        assert all(v == 0.0 for v in res.values())

    def test_residency_counts_all_domains(self, cfg):
        ctrl = DvfsController(StaticPredictor(2), StaticObjective(2.2), cfg)
        ctrl.decide()
        res = ctrl.log.frequency_residency(cfg.dvfs.frequencies_ghz)
        assert res[2.2] == pytest.approx(1.0)

    def test_residency_snaps_float_noise_onto_grid(self, cfg):
        # Regression: decisions that round-tripped through float
        # arithmetic (e.g. 0.1 * 17 != 1.7) used to miss the exact-==
        # bucket lookup and silently vanish from the residency, leaving
        # the fractions summing below 1.0.
        log = ControllerLog()
        log.chosen_freqs.append([0.1 * 17, 1.3 + 1e-8])
        log.predictions.append([None, None])
        grid = cfg.dvfs.frequencies_ghz
        res = log.frequency_residency(grid)
        assert sum(res.values()) == pytest.approx(1.0)
        assert res[1.7] == pytest.approx(0.5)
        assert res[1.3] == pytest.approx(0.5)
        assert set(res) == set(grid)  # keys are the grid floats themselves

    def test_residency_rejects_off_grid_frequency(self, cfg):
        log = ControllerLog()
        log.chosen_freqs.append([1.75, 1.7])
        with pytest.raises(ValueError, match="1.75"):
            log.frequency_residency(cfg.dvfs.frequencies_ghz)
