"""Distributed sweep backend: broker/worker protocol, leases, exactly-once.

End-to-end tests run a real :class:`SweepBroker` (ephemeral port) with
real :class:`SweepWorker` loops in threads; protocol-level tests drive
the broker with a hand-rolled "fake worker" socket so lease expiry,
late results, and adversarial frames can be sequenced deterministically.
"""

import functools
import socket
import struct
import threading
import time

import pytest

from repro.analysis.trace_io import run_result_to_dict
from repro.config import small_config
from repro.core.objectives import (
    EDnPObjective,
    PerformanceCapObjective,
    QoSDeadlineObjective,
    StaticObjective,
)
from repro.obs.trace import Tracer
from repro.runtime.cache import ResultCache, describe_objective
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.distributed import (
    BROKER_PROTOCOL_VERSION,
    LeaseExpired,
    RemoteCellError,
    SweepBroker,
    SweepWorker,
    WorkerError,
    error_from_wire,
    objective_from_wire,
    result_from_wire,
    result_to_wire,
    sweep_task_from_wire,
    sweep_task_to_wire,
)
from repro.runtime.executor import (
    ON_EXHAUSTED_RECORD,
    FailedCell,
    RetryPolicy,
    SweepExecutor,
    SweepTask,
    SweepTimeoutError,
    _run_task_timed,
)
from repro.runtime.faults import CorruptResultError, InjectedFaultError
from repro.runtime.wire import ProtocolError, recv_frame, send_frame

CONFIG = small_config()


def task(workload="dgemm", design="CRISP", **kw):
    kw.setdefault("scale", 0.1)
    kw.setdefault("max_epochs", 20)
    return SweepTask(workload=workload, design=design, config=CONFIG, **kw)


@functools.lru_cache(maxsize=None)
def computed(workload, design):
    """One real result per cell, computed once for the whole module."""
    result, _, _ = _run_task_timed(task(workload, design))
    return result


def result_frames(t, index, attempt):
    """A valid ``result`` frame for a (real, precomputed) cell result."""
    result = computed(t.workload, t.design)
    return {
        "type": "result", "index": index, "attempt": attempt,
        "key": t.key(), "wall_s": 0.01,
        "result": result_to_wire(result),
        "dict": run_result_to_dict(result), "spans": [],
    }


class BrokerHarness:
    """A broker serving ``tasks`` on a background thread."""

    def __init__(self, tasks, executor_kw=None, broker_kw=None):
        self.tasks = tasks
        self.broker = SweepBroker(port=0, lease_s=0.6, **(broker_kw or {}))
        self.ex = SweepExecutor(
            backend="remote", broker=self.broker, **(executor_kw or {})
        )
        self.results = None
        self.error = None
        self._thread = threading.Thread(target=self._run, name="harness-sweep")

    def _run(self):
        try:
            self.results = self.ex.run(self.tasks)
        except BaseException as exc:  # noqa: BLE001 - re-raised in join()
            self.error = exc

    def __enter__(self):
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.broker.bound_port is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert self.broker.bound_port is not None, "broker never bound"
        return self

    def connect(self):
        sock = socket.create_connection(
            ("127.0.0.1", self.broker.bound_port), timeout=10.0
        )
        sock.settimeout(10.0)
        return sock

    def worker(self, **kw):
        kw.setdefault("timeout_s", 20.0)
        return SweepWorker(port=self.broker.bound_port, **kw)

    def join(self, timeout=60.0):
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "sweep hung"
        if self.error is not None:
            raise self.error
        return self.results

    def __exit__(self, *exc):
        self._thread.join(timeout=60.0)
        return False


def handshake(sock, name="fake"):
    send_frame(sock, {
        "type": "hello", "protocol": BROKER_PROTOCOL_VERSION, "worker": name,
    })
    reply = recv_frame(sock, strict=True)
    assert reply["type"] == "hello_ok"
    return reply


def lease(sock):
    """Send ready until the broker grants a task (skipping idle waits)."""
    for _ in range(200):
        send_frame(sock, {"type": "ready"})
        reply = recv_frame(sock, strict=True)
        if reply["type"] == "task":
            return reply
        assert reply["type"] == "idle", reply
        time.sleep(float(reply["retry_after_s"]))
    raise AssertionError("broker never granted a task")


# ----------------------------------------------------------------------
# Wire codecs


class TestTaskCodec:
    @pytest.mark.parametrize("objective", [
        None,
        StaticObjective(1.4),
        EDnPObjective(2),
        EDnPObjective(1, price_scale=1.25),
        PerformanceCapObjective(0.05),
        QoSDeadlineObjective(1000.0),
    ])
    def test_round_trip_preserves_cache_key(self, objective):
        t = task(objective=objective, oracle_sample_freqs=4,
                 collect_accuracy=True)
        rebuilt = sweep_task_from_wire(sweep_task_to_wire(t))
        assert rebuilt.key() == t.key()
        assert rebuilt.label == t.label
        assert describe_objective(rebuilt.objective) == describe_objective(
            t.objective
        )

    def test_wire_form_is_json_clean(self):
        import json

        wire = sweep_task_to_wire(task(objective=EDnPObjective(2)))
        assert sweep_task_from_wire(json.loads(json.dumps(wire))).key() == \
            task(objective=EDnPObjective(2)).key()

    def test_malformed_task_is_typed(self):
        with pytest.raises(ProtocolError, match="malformed sweep task"):
            sweep_task_from_wire({"workload": "dgemm"})

    def test_unknown_objective_is_typed(self):
        wire = sweep_task_to_wire(task())
        wire["objective"] = {"__class__": "EvilObjective"}
        with pytest.raises(ProtocolError, match="unknown objective"):
            sweep_task_from_wire(wire)

    def test_objective_from_wire_matches_canonical_form(self):
        obj = QoSDeadlineObjective(800.0)
        rebuilt = objective_from_wire(describe_objective(obj))
        assert describe_objective(rebuilt) == describe_objective(obj)
        assert objective_from_wire(None) is None


class TestResultCodec:
    def test_pickle_round_trip_is_bit_identical(self):
        result = computed("dgemm", "CRISP")
        clone = result_from_wire(result_to_wire(result))
        assert run_result_to_dict(clone) == run_result_to_dict(result)

    def test_garbage_blob_is_corrupt(self):
        with pytest.raises(CorruptResultError):
            result_from_wire("!!!not-base64-pickle!!!")

    def test_error_reconstruction(self):
        assert isinstance(
            error_from_wire("InjectedFaultError", "x"), InjectedFaultError
        )
        assert isinstance(
            error_from_wire("CorruptResultError", "x"), CorruptResultError
        )
        assert isinstance(
            error_from_wire("SweepTimeoutError", "x"), SweepTimeoutError
        )
        exc = error_from_wire("SomethingNovel", "boom")
        assert isinstance(exc, RemoteCellError)
        assert exc.remote_type == "SomethingNovel"


# ----------------------------------------------------------------------
# Executor surface


class TestExecutorSurface:
    def test_remote_backend_requires_broker(self):
        with pytest.raises(ValueError, match="requires a broker"):
            SweepExecutor(backend="remote")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepExecutor(backend="cloud")

    def test_local_backend_unchanged(self):
        r = SweepExecutor().run_one(task())
        assert run_result_to_dict(r) == run_result_to_dict(
            computed("dgemm", "CRISP")
        )


# ----------------------------------------------------------------------
# End-to-end: real workers


class TestEndToEnd:
    def test_two_workers_bit_identical_and_ordered(self, tmp_path):
        tasks = [task(w, d) for w in ("dgemm", "hacc")
                 for d in ("CRISP", "PCSTALL")]
        serial = SweepExecutor().run(tasks)
        manifest = tmp_path / "sweep.manifest.jsonl"
        tracer = Tracer(ring_size=0)
        with BrokerHarness(
            tasks,
            executor_kw=dict(
                cache=ResultCache(tmp_path / "cache"),
                checkpoint=SweepCheckpoint(manifest, sweep="e2e"),
                tracer=tracer,
            ),
        ) as h:
            workers = [h.worker(name=f"w{i}") for i in range(2)]
            threads = [threading.Thread(target=w.run) for w in workers]
            for t in threads:
                t.start()
            results = h.join()
            for t in threads:
                t.join(timeout=30)
        assert [run_result_to_dict(r) for r in results] == [
            run_result_to_dict(r) for r in serial
        ]
        # Both workers did real work and nothing was double-kept.
        assert sum(w.summary.completed for w in workers) == len(tasks)
        assert len(h.ex.checkpoint.completed) == len(tasks)
        counters = h.ex.progress.registry.counter_values()
        assert counters["sweep_cells_total"] == len(tasks)
        assert counters["sweep_cells_remote"] == len(tasks)
        assert counters["sweep_workers_connected"] == 2
        # Cross-host spans: every worker-side run span nests under a
        # broker-side cell span within one trace.
        spans = [r for r in tracer.collect() if r.get("type") == "span"]
        by_id = {s["span_id"]: s for s in spans}
        runs = [s for s in spans if s["name"] == "run"]
        assert len(runs) == len(tasks)
        for r in runs:
            assert by_id[r["parent_id"]]["name"] == "cell"
            assert r["trace_id"] == by_id[r["parent_id"]]["trace_id"]

    def test_remote_sweep_reuses_cache(self, tmp_path):
        tasks = [task("dgemm", "CRISP"), task("dgemm", "PCSTALL")]
        cache = ResultCache(tmp_path / "cache")
        with BrokerHarness(tasks, executor_kw=dict(cache=cache)) as h:
            w = h.worker(name="w0")
            t = threading.Thread(target=w.run)
            t.start()
            first = h.join()
            t.join(timeout=30)
        # Second remote run: everything cached, no broker/worker needed.
        ex2 = SweepExecutor(
            backend="remote", broker=SweepBroker(port=0), cache=cache
        )
        second = ex2.run(tasks)
        assert [run_result_to_dict(r) for r in second] == [
            run_result_to_dict(r) for r in first
        ]
        assert ex2.progress.cache_hits == len(tasks)

    def test_worker_max_tasks_leaves_early(self, tmp_path):
        tasks = [task("dgemm", "CRISP"), task("dgemm", "PCSTALL")]
        with BrokerHarness(tasks) as h:
            limited = h.worker(name="limited", max_tasks=1)
            rest = h.worker(name="rest")
            t1 = threading.Thread(target=limited.run)
            t1.start()
            t1.join(timeout=60)
            assert limited.summary.completed == 1
            t2 = threading.Thread(target=rest.run)
            t2.start()
            results = h.join()
            t2.join(timeout=30)
        assert len(results) == 2 and all(r is not None for r in results)


# ----------------------------------------------------------------------
# Leases: death, expiry, heartbeats, exactly-once


class TestLeases:
    def test_dead_worker_lease_reclaimed_and_reassigned(self):
        tasks = [task("dgemm", "CRISP"), task("dgemm", "PCSTALL")]
        with BrokerHarness(tasks) as h:
            dead = h.connect()
            handshake(dead, "doomed")
            grant = lease(dead)
            dead.close()  # dies holding the lease; broker must reclaim
            w = h.worker(name="survivor")
            t = threading.Thread(target=w.run)
            t.start()
            results = h.join()
            t.join(timeout=30)
        assert all(r is not None for r in results)
        assert h.ex.progress.reclaims >= 1
        label, worker, attempt, cause = h.ex.progress.reclaim_events[0]
        assert label == tasks[int(grant["index"])].label
        assert attempt == 1 and "disconnect" in cause
        counters = h.ex.progress.registry.counter_values()
        assert counters["sweep_cells_reclaimed"] >= 1
        assert counters["sweep_retries_total"] >= 1
        # The reclaimed cell's second attempt is charged to the budget.
        record = next(
            c for c in h.ex.progress.cells if c.label == label
        )
        assert record.attempts == 2

    def test_expired_lease_reclaimed_without_disconnect(self):
        """A hung worker (connected, silent, no heartbeats) loses its
        lease at the deadline; its late result is then refused."""
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            hung = h.connect()
            handshake(hung, "hung")
            grant = lease(hung)
            # No heartbeats: lease (0.6s) expires, reaper reclaims.
            deadline = time.monotonic() + 10
            while h.ex.progress.reclaims == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert h.ex.progress.reclaims == 1
            # The stale attempt-1 result must be refused (exactly-once)...
            send_frame(hung, result_frames(tasks[0], grant["index"],
                                           grant["attempt"]))
            ack = recv_frame(hung, strict=True)
            assert ack == {"type": "ack", "accepted": False}
            # ...and the same connection may lease the cell again.
            regrant = lease(hung)
            assert regrant["index"] == grant["index"]
            assert regrant["attempt"] == grant["attempt"] + 1
            send_frame(hung, result_frames(tasks[0], regrant["index"],
                                           regrant["attempt"]))
            ack = recv_frame(hung, strict=True)
            assert ack == {"type": "ack", "accepted": True}
            results = h.join()
            hung.close()
        assert run_result_to_dict(results[0]) == run_result_to_dict(
            computed("dgemm", "CRISP")
        )
        counters = h.ex.progress.registry.counter_values()
        assert counters["sweep_cells_reclaimed"] == 1
        assert counters["sweep_results_duplicate"] == 1

    def test_heartbeats_keep_a_slow_lease_alive(self):
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            slow = h.connect()
            handshake(slow, "slow")
            grant = lease(slow)
            # Hold the lease well past lease_s (0.6s) with heartbeats.
            for _ in range(8):
                time.sleep(0.2)
                send_frame(slow, {"type": "heartbeat",
                                  "index": grant["index"]})
            assert h.ex.progress.reclaims == 0
            send_frame(slow, result_frames(tasks[0], grant["index"],
                                           grant["attempt"]))
            assert recv_frame(slow, strict=True)["accepted"] is True
            h.join()
            slow.close()
        assert h.ex.progress.reclaims == 0

    def test_task_timeout_caps_a_heartbeating_hang(self):
        """With task_timeout_s set, heartbeats cannot renew forever: the
        hard deadline reclaims a wedged-but-alive worker's lease."""
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(
            tasks, executor_kw=dict(task_timeout_s=0.5)
        ) as h:
            wedged = h.connect()
            handshake(wedged, "wedged")
            grant = lease(wedged)
            stop = threading.Event()

            def beat():
                while not stop.wait(0.1):
                    try:
                        send_frame(wedged, {"type": "heartbeat",
                                            "index": grant["index"]})
                    except OSError:
                        return

            beater = threading.Thread(target=beat)
            beater.start()
            deadline = time.monotonic() + 15
            while h.ex.progress.reclaims == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert h.ex.progress.reclaims == 1, \
                "hard lease cap never fired despite heartbeats"
            w = h.worker(name="healthy")
            t = threading.Thread(target=w.run)
            t.start()
            h.join()
            stop.set()
            beater.join()
            t.join(timeout=30)
            wedged.close()


# ----------------------------------------------------------------------
# Failure accounting


class TestFailures:
    def test_remote_failures_exhaust_into_failed_cell(self):
        tasks = [task("dgemm", "CRISP")]
        retry = RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                            on_exhausted=ON_EXHAUSTED_RECORD)
        with BrokerHarness(tasks, executor_kw=dict(retry=retry)) as h:
            sock = h.connect()
            handshake(sock, "faulty")
            for expected_attempt in (1, 2):
                grant = lease(sock)
                assert grant["attempt"] == expected_attempt
                send_frame(sock, {
                    "type": "fail", "index": grant["index"],
                    "attempt": grant["attempt"],
                    "error_type": "InjectedFaultError", "error": "planned",
                })
                assert recv_frame(sock, strict=True)["type"] == "ack"
            results = h.join()
            sock.close()
        cell = results[0]
        assert isinstance(cell, FailedCell)
        assert cell.attempts == 2
        assert "InjectedFaultError" in cell.error
        assert h.ex.progress.failures == 1

    def test_nonretryable_remote_failure_fails_fast(self):
        tasks = [task("dgemm", "CRISP")]
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                            on_exhausted=ON_EXHAUSTED_RECORD)
        with BrokerHarness(tasks, executor_kw=dict(retry=retry)) as h:
            sock = h.connect()
            handshake(sock, "broken-env")
            grant = lease(sock)
            send_frame(sock, {
                "type": "fail", "index": grant["index"],
                "attempt": grant["attempt"],
                "error_type": "TaskKeyMismatch",
                "error": "version skew",
            })
            assert recv_frame(sock, strict=True)["type"] == "ack"
            results = h.join()
            sock.close()
        # One attempt only: an unknown error type is not retryable.
        cell = results[0]
        assert isinstance(cell, FailedCell) and cell.attempts == 1

    def test_lease_expiry_is_implicitly_retryable(self):
        assert not RetryPolicy().is_retryable(LeaseExpired("x"))
        # ...by policy type it is not listed, but the broker treats it
        # as retryable explicitly - guarded by the reclaim tests above.
        assert LeaseExpired.__mro__[1] is RuntimeError

    def test_corrupt_shipped_result_charges_a_retry(self):
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            sock = h.connect()
            handshake(sock, "corruptor")
            grant = lease(sock)
            frame = result_frames(tasks[0], grant["index"], grant["attempt"])
            frame["dict"] = {"tampered": True}  # pickle/dict mismatch
            send_frame(sock, frame)
            assert recv_frame(sock, strict=True)["accepted"] is False
            # Integrity failure charged as CorruptResultError; re-lease
            # and complete properly.
            regrant = lease(sock)
            assert regrant["attempt"] == 2
            send_frame(sock, result_frames(tasks[0], regrant["index"], 2))
            assert recv_frame(sock, strict=True)["accepted"] is True
            h.join()
            sock.close()
        assert any(
            kind == "CorruptResultError"
            for _, _, kind in h.ex.progress.retry_events
        )


# ----------------------------------------------------------------------
# Adversarial peers


class TestAdversarialPeers:
    def test_protocol_version_mismatch_rejected(self):
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            sock = h.connect()
            send_frame(sock, {"type": "hello", "protocol": 99, "worker": "x"})
            reply = recv_frame(sock, strict=True)
            assert reply["type"] == "error"
            assert "version mismatch" in reply["error"]
            sock.close()
            self._finish(h)

    def test_unknown_message_type_rejected(self):
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            sock = h.connect()
            handshake(sock, "weird")
            send_frame(sock, {"type": "exfiltrate"})
            reply = recv_frame(sock, strict=True)
            assert reply["type"] == "error"
            sock.close()
            self._finish(h)

    def test_garbage_bytes_do_not_wedge_the_broker(self):
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            # Oversized length prefix, then torn garbage, then vanish.
            sock = h.connect()
            sock.sendall(struct.pack(">I", 2**31) + b"\x00junk")
            sock.close()
            sock2 = h.connect()
            sock2.sendall(b"\x00\x00\x00\x10only-half")
            sock2.close()
            self._finish(h)

    def test_goodbye_is_clean(self):
        tasks = [task("dgemm", "CRISP")]
        with BrokerHarness(tasks) as h:
            sock = h.connect()
            handshake(sock, "polite")
            send_frame(sock, {"type": "goodbye"})
            assert recv_frame(sock, strict=True)["type"] == "bye"
            assert recv_frame(sock, strict=True) is None
            sock.close()
            self._finish(h)

    @staticmethod
    def _finish(h):
        """The sweep must still complete via an honest worker."""
        w = h.worker(name="honest")
        t = threading.Thread(target=w.run)
        t.start()
        results = h.join()
        t.join(timeout=30)
        assert all(r is not None for r in results)
        assert h.ex.progress.reclaims == 0  # garbage held no leases


class TestWorkerAgainstHostileBroker:
    """The worker loop must turn broker misbehaviour into WorkerError."""

    def _serve(self, script):
        """One-shot fake broker: accepts one worker, runs ``script(conn)``."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        listener.settimeout(10.0)
        port = listener.getsockname()[1]

        def run():
            conn, _ = listener.accept()
            conn.settimeout(10.0)
            try:
                script(conn)
            finally:
                conn.close()
                listener.close()

        thread = threading.Thread(target=run)
        thread.start()
        return port, thread

    def test_garbage_reply_is_worker_error(self):
        def script(conn):
            recv_frame(conn, strict=True)  # hello
            conn.sendall(struct.pack(">I", 2**31))  # oversized prefix

        port, thread = self._serve(script)
        with pytest.raises(WorkerError, match="protocol violation"):
            SweepWorker(port=port, timeout_s=5.0).run()
        thread.join(timeout=10)

    def test_mid_frame_disconnect_is_worker_error(self):
        def script(conn):
            recv_frame(conn, strict=True)
            conn.sendall(b"\x00\x00\x01\x00partial")  # torn frame, close

        port, thread = self._serve(script)
        with pytest.raises(WorkerError):
            SweepWorker(port=port, timeout_s=5.0).run()
        thread.join(timeout=10)

    def test_tampered_task_key_refused_before_compute(self):
        """A task whose rebuilt key mismatches the broker's is never
        executed - the worker reports TaskKeyMismatch instead."""
        t = task("dgemm", "CRISP")
        seen = {}

        def script(conn):
            recv_frame(conn, strict=True)  # hello
            send_frame(conn, {"type": "hello_ok",
                              "protocol": BROKER_PROTOCOL_VERSION,
                              "lease_s": 5.0, "heartbeat_s": 1.0,
                              "n_tasks": 1})
            recv_frame(conn, strict=True)  # ready
            send_frame(conn, {
                "type": "task", "index": 0, "attempt": 1,
                "key": "0" * 64,  # tampered
                "task": sweep_task_to_wire(t), "lease_s": 5.0, "span": None,
            })
            seen["fail"] = recv_frame(conn, strict=True)
            send_frame(conn, {"type": "ack", "accepted": True})
            recv_frame(conn, strict=True)  # next ready
            send_frame(conn, {"type": "done"})

        port, thread = self._serve(script)
        worker = SweepWorker(port=port, timeout_s=10.0)
        summary = worker.run()
        thread.join(timeout=10)
        assert seen["fail"]["type"] == "fail"
        assert seen["fail"]["error_type"] == "TaskKeyMismatch"
        assert summary.failed == 1 and summary.completed == 0

    def test_no_broker_is_worker_error(self):
        with pytest.raises(WorkerError, match="no broker"):
            SweepWorker(port=1, connect_timeout_s=0.3, timeout_s=1.0).run()
