"""Observability stack: span tracing, drift monitoring, Prometheus, logs.

The two contracts this suite anchors:

* **Zero overhead when off** - with no tracer attached, no tracing
  object is ever constructed and RunResults are bit-identical to a
  traced run's.
* **Strictly observational when on** - a traced sweep / a traced
  serving session produces exactly the results and decisions an
  untraced one does; spans, alerts and metrics only describe them.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import threading

import pytest

from repro.config import small_config
from repro.obs import (
    DriftConfig,
    DriftMonitor,
    ExpositionError,
    IntervalSummary,
    SpanContext,
    Tracer,
    diff_metrics,
    iter_jsonl,
    parse_exposition,
    render_prometheus,
    sanitise_name,
    span_records,
    summarize_records,
)
from repro.obs.log import JsonFormatter, configure_logging, get_logger
from repro.runtime.executor import SweepExecutor, SweepTask, run_task
from repro.runtime.progress import SweepInstrumentation
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.schema import validate_records


def small_task(design="PCSTALL", workload="dgemm", max_epochs=6):
    return SweepTask(
        workload,
        design,
        small_config(n_cus=2, waves_per_cu=4),
        scale=0.12,
        max_epochs=max_epochs,
        oracle_sample_freqs=3,
        collect_accuracy=True,
    )


# ----------------------------------------------------------------------
# Tracer unit behaviour


class TestTracer:
    def test_ids_are_monotonic_and_parented(self):
        tr = Tracer(ring_size=0)
        a = tr.start("sweep")
        b = tr.start("cell", parent=a)
        c = tr.start("cell", parent=a)
        assert (a.span_id, b.span_id, c.span_id) == ("1", "2", "3")
        assert b.parent_id == a.span_id and c.parent_id == a.span_id
        for span in (c, b, a):
            tr.finish(span)
        assert tr.total_spans == 3

    def test_context_manager_nests(self):
        tr = Tracer(ring_size=0)
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            plain = tr.start("sibling")
            assert plain.parent_id == outer.span_id
            tr.finish(plain)
        names = [r["name"] for r in tr.records if r["type"] == "span"]
        assert names == ["inner", "sibling", "outer"]

    def test_finish_twice_raises(self):
        tr = Tracer(ring_size=0)
        span = tr.start("x")
        tr.finish(span)
        with pytest.raises(ValueError, match="already finished"):
            tr.finish(span)

    def test_ring_bounds_memory(self):
        tr = Tracer(ring_size=4)
        for i in range(10):
            tr.finish(tr.start("s", i=i))
        assert len(tr.records) == 4
        assert tr.total_spans == 10
        assert tr.dropped > 0

    def test_event_is_zero_or_positive_duration(self):
        tr = Tracer(ring_size=0)
        span = tr.event("alert", signal="rel_error")
        assert span.done and span.duration_ns >= 0

    def test_header_and_jsonl_sink_validate(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(ring_size=0, jsonl_path=str(path)) as tr:
            with tr.span("run"):
                tr.finish(tr.start("epoch", epoch=0))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "trace"
        assert records[0]["trace_id"] == tr.trace_id
        assert records[0]["repro_version"]
        validate_records(records)  # raises on any schema violation

    def test_registry_counts_spans(self):
        reg = MetricsRegistry()
        tr = Tracer(ring_size=0, registry=reg)
        tr.finish(tr.start("epoch"))
        tr.finish(tr.start("epoch"))
        assert reg.counter("trace_spans_total").value == 2
        assert reg.counter("trace_spans_epoch").value == 2

    def test_cross_process_propagation_round_trip(self):
        parent = Tracer(ring_size=0)
        cell = parent.start("cell")
        wire = parent.context(cell).to_wire()
        assert SpanContext.from_wire(wire) == parent.context(cell)

        worker = Tracer.from_context(SpanContext.from_wire(wire))
        assert worker.trace_id == parent.trace_id
        run = worker.start("run")
        worker.finish(run)
        shipped = worker.collect()
        assert not worker.records  # collect() drains

        parent.adopt(shipped)
        parent.finish(cell)
        spans = {r["name"]: r for r in parent.records if r["type"] == "span"}
        # The worker's span id is minted under the cell's prefix and
        # parents onto the shipped cell span - unique without any
        # cross-process coordination.
        assert spans["run"]["span_id"] == f"{cell.span_id}.1"
        assert spans["run"]["parent_id"] == cell.span_id
        assert spans["run"]["trace_id"] == parent.trace_id

    def test_span_records_helper_handles_none(self):
        assert span_records(None) == []
        tr = Tracer(ring_size=0)
        tr.finish(tr.start("x"))
        assert len(span_records(tr)) == 2  # header + span


# ----------------------------------------------------------------------
# The zero-overhead / bit-identical contract


class TestTracingContract:
    def test_off_is_allocation_free_and_bit_identical(self, monkeypatch):
        import repro.obs.trace as trace_mod

        task = small_task()
        with Tracer(ring_size=0) as tracer:
            traced = run_task(task, tracer=tracer)
        assert tracer.total_spans > 0

        def boom(self, *args, **kwargs):
            raise AssertionError("tracing-off path built a tracing object")

        monkeypatch.setattr(trace_mod.Tracer, "__init__", boom)
        monkeypatch.setattr(trace_mod.Span, "__init__", boom)
        untraced = run_task(task)
        assert untraced == traced

    def test_traced_run_spans_cover_every_epoch(self):
        task = small_task()
        with Tracer(ring_size=0) as tr:
            result = run_task(task, tracer=tr)
        spans = [r for r in tr.records if r["type"] == "span"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["run"]) == 1
        run = by_name["run"][0]
        assert run["attrs"]["workload"] == "dgemm"
        assert len(by_name["epoch"]) == result.epochs
        assert all(s["parent_id"] == run["span_id"] for s in by_name["epoch"])
        # collect_accuracy=True forces oracle sampling every epoch.
        assert len(by_name["oracle_sample"]) == result.epochs
        epoch_ids = {s["span_id"] for s in by_name["epoch"]}
        assert all(
            s["parent_id"] in epoch_ids for s in by_name["oracle_sample"]
        )
        for span in spans:
            assert span["t_end_ns"] >= span["t_start_ns"]


class TestTracedSweep:
    def test_parallel_sweep_spans_and_results(self):
        tasks = [small_task(design=d) for d in ("PCSTALL", "STALL")]
        plain = [run_task(t) for t in tasks]

        tracer = Tracer(ring_size=0)
        executor = SweepExecutor(
            max_workers=2,
            cache=None,
            progress=SweepInstrumentation(max_workers=2),
            tracer=tracer,
        )
        results = executor.run(tasks)
        assert results == plain  # tracing never perturbs results

        spans = [r for r in tracer.records if r["type"] == "span"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (sweep,) = by_name["sweep"]
        cells = by_name["cell"]
        assert len(cells) == 2
        assert all(c["parent_id"] == sweep["span_id"] for c in cells)
        assert {c["attrs"]["status"] for c in cells} == {"ok"}
        cell_ids = {c["span_id"] for c in cells}
        runs = by_name["run"]
        assert len(runs) == 2
        for run in runs:
            # Worker-minted ids live under their cell span's prefix.
            assert run["parent_id"] in cell_ids
            assert run["span_id"].startswith(f"{run['parent_id']}.")
        assert len(by_name["epoch"]) == sum(r.epochs for r in results)


# ----------------------------------------------------------------------
# Drift monitoring


class _LogStub:
    def __init__(self):
        self.warnings = []
        self.infos = []

    def warning(self, msg, **kwargs):
        self.warnings.append(msg)

    def info(self, msg, **kwargs):
        self.infos.append(msg)


class TestDrift:
    def test_no_alert_below_min_count(self):
        monitor = DriftMonitor(DriftConfig(window=8, min_count=4))
        for _ in range(3):
            assert monitor.observe_error(1.0) is None
        assert monitor.alert_count == 0

    def test_alert_fires_on_threshold_crossing(self):
        monitor = DriftMonitor(DriftConfig(window=8, min_count=4))
        for _ in range(4):
            monitor.observe_error(0.1)
        assert monitor.alert_count == 0
        alert = None
        for _ in range(8):
            alert = monitor.observe_error(1.0) or alert
        assert alert is not None and alert.kind == "alert"
        assert alert.signal == "rel_error"
        assert alert.value > alert.threshold == 0.5
        assert "drift" in alert.render()

    def test_cooldown_suppresses_then_realerting(self):
        monitor = DriftMonitor(DriftConfig(window=4, min_count=2))
        fired = [
            i for i in range(10) if monitor.observe_error(1.0) is not None
        ]
        # First alert once min_count is met; the next only after a full
        # window of fresh evidence (cooldown defaults to the window).
        assert fired == [1, 5, 9]

    def test_recovery_announced_once(self):
        log = _LogStub()
        monitor = DriftMonitor(DriftConfig(window=4, min_count=2), log=log)
        for _ in range(4):
            monitor.observe_error(1.0)
        for _ in range(8):
            monitor.observe_error(0.0)
        kinds = [a.kind for a in monitor.alerts]
        assert kinds.count("alert") >= 1
        assert kinds.count("recovered") == 1
        assert len(log.warnings) == kinds.count("alert")
        assert len(log.infos) == 1

    def test_unknown_signal_needs_threshold(self):
        monitor = DriftMonitor(DriftConfig(thresholds={"latency_ms": 5.0}))
        assert monitor.observe("latency_ms", 1.0) is None
        with pytest.raises(ValueError, match="no threshold"):
            monitor.observe("unconfigured", 1.0)

    def test_shed_and_retry_signals(self):
        monitor = DriftMonitor(DriftConfig(window=4, min_count=4))
        for _ in range(4):
            monitor.observe_shed(True)
            monitor.observe_retry(False)
        assert monitor.mean("shed_rate") == 1.0
        assert monitor.mean("retry_rate") == 0.0
        assert [a.signal for a in monitor.alerts] == ["shed_rate"]

    def test_alert_fans_out_to_every_sink(self, tmp_path):
        """The acceptance scenario: synthetic accuracy degradation must
        surface in the span JSONL, the registry, and ``repro monitor``'s
        summary - all three."""
        path = tmp_path / "spans.jsonl"
        registry = MetricsRegistry()
        tracer = Tracer(ring_size=0, jsonl_path=str(path), registry=registry)
        monitor = DriftMonitor(
            DriftConfig(window=16, min_count=8),
            registry=registry,
            tracer=tracer,
        )
        for _ in range(8):
            monitor.observe_error(0.05)  # healthy phase
        assert monitor.alert_count == 0
        for _ in range(16):
            monitor.observe_error(0.9)  # degraded phase
        assert monitor.alert_count >= 1
        tracer.close()

        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["type"] == "alert" for r in records)
        assert any(
            r["type"] == "span" and r["name"] == "drift_alert" for r in records
        )
        assert registry.counter("drift_alerts_total").value >= 1
        assert registry.counter("drift_alerts_rel_error").value >= 1
        assert registry.gauge("drift_rel_error_level").value > 0.5

        summary = summarize_records(records)
        assert summary.alerts >= 1
        assert "ALERTS=" in summary.render()
        assert "rel_error" in summary.render()


# ----------------------------------------------------------------------
# Prometheus exposition


class TestPrometheus:
    def build_registry(self):
        reg = MetricsRegistry()
        reg.inc("service_requests", 7)
        reg.inc("weird name!", 1)
        reg.gauge("service_sessions").set(3)
        hist = reg.histogram("service_batch_size", (1.0, 2.0, 4.0))
        for v in (1, 1, 3, 9):
            hist.observe(v)
        return reg

    def test_render_parse_round_trip(self):
        text = render_prometheus(self.build_registry())
        samples = parse_exposition(text)
        assert samples[("service_requests", "")] == 7
        assert samples[("service_sessions", "")] == 3
        assert samples[("weird_name_", "")] == 1
        # Buckets are cumulative with +Inf == _count.
        assert samples[("service_batch_size_bucket", "le=1")] == 2
        assert samples[("service_batch_size_bucket", "le=2")] == 2
        assert samples[("service_batch_size_bucket", "le=4")] == 3
        assert samples[("service_batch_size_bucket", "le=+Inf")] == 4
        assert samples[("service_batch_size_count", "")] == 4
        assert samples[("service_batch_size_sum", "")] == 14

    def test_constant_labels_attach_everywhere(self):
        text = render_prometheus(
            self.build_registry(), labels={"config_hash": "abc123"}
        )
        samples = parse_exposition(text)
        assert all("config_hash=abc123" in key[1] for key in samples)

    def test_renders_snapshot_dict_identically(self):
        reg = self.build_registry()
        assert render_prometheus(reg.to_dict()) == render_prometheus(reg)

    def test_sweep_retry_metrics_expose_as_histogram(self):
        progress = SweepInstrumentation()
        for attempt in (1, 2):
            progress.record_retry("dgemm/PCSTALL", attempt,
                                  RuntimeError("boom"), 0.05 * attempt)
        samples = parse_exposition(render_prometheus(progress.registry))
        assert samples[("sweep_retries_total", "")] == 2
        assert samples[("sweep_retry_backoff_s_count", "")] == 2
        assert any(
            name == "sweep_retry_backoff_s_bucket" for name, _ in samples
        )

    def test_sanitise_name(self):
        assert sanitise_name("ok_name:sub") == "ok_name:sub"
        assert sanitise_name("99 problems") == "_99_problems"

    @pytest.mark.parametrize("body,complaint", [
        ("orphan 1\n", "lacks a preceding TYPE"),
        ("# TYPE x counter\nx 1\nx 2\n", "duplicate sample"),
        ("# TYPE x wibble\n", "unknown type"),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\nh_sum 1\nh_count 5\n',
            "not cumulative",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_sum 1\nh_count 2\n',
            r"\+Inf",
        ),
        (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 3\nh_sum 1\nh_count 2\n',
            "!= _count",
        ),
    ])
    def test_parse_rejects_contract_violations(self, body, complaint):
        with pytest.raises(ExpositionError, match=complaint):
            parse_exposition(body)


# ----------------------------------------------------------------------
# Monitor engine


class TestMonitor:
    def test_interval_summary_dispatch_and_render(self):
        summary = IntervalSummary()
        summary.add({"type": "epoch", "epoch": 0})
        summary.add({"type": "domain", "rel_error": 0.5, "mispredicted": True})
        summary.add({"type": "domain", "rel_error": 0.1, "mispredicted": False})
        summary.add({"type": "span", "name": "run",
                     "t_start_ns": 0, "t_end_ns": 2_000_000})
        summary.add({"type": "alert", "signal": "rel_error", "kind": "alert"})
        summary.add({"type": "alert", "signal": "rel_error",
                     "kind": "recovered"})
        summary.add({"type": "observation"})
        line = summary.render("12:00:00")
        assert line.startswith("[12:00:00] records=7")
        assert "epochs=1" in line
        assert "err=0.300" in line
        assert "miss=1/2" in line
        assert "ALERTS=1(rel_error)" in line
        assert "recovered=1" in line
        assert "slowest=run:2.00ms" in line

    def test_iter_jsonl_skips_torn_tail(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"type": "epoch"}\n{"type": "dom')  # torn write
        with open(path) as fh:
            records = [r for r in iter_jsonl(fh) if r is not None]
        assert records == [{"type": "epoch"}]

    def test_iter_jsonl_follow_idles_out(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"type": "epoch"}\n')
        with open(path) as fh:
            seen = list(iter_jsonl(fh, follow=True, poll_s=0.01,
                                   idle_limit_s=0.05))
        assert {"type": "epoch"} in seen
        assert seen[-1] is None  # idle polls surface as None markers

    def test_diff_metrics_deltas(self):
        prev = {"counters": {"service_requests": 10, "service_decisions": 8},
                "sessions": 1, "gauges": {}}
        cur = {"counters": {"service_requests": 15, "service_decisions": 11,
                            "service_shed": 2, "drift_alerts_total": 1},
               "sessions": 2,
               "gauges": {"drift_shed_rate_level": 0.25, "other": 9}}
        line = diff_metrics(prev, cur)
        assert "req=+5" in line and "dec=+3" in line
        assert "shed=+2" in line and "ALERTS=+1" in line
        assert "sessions=2" in line
        assert "shed_rate=0.250" in line
        assert "other" not in line

    def test_diff_metrics_first_sample(self):
        line = diff_metrics(None, {"counters": {"service_requests": 4}})
        assert "req=+4" in line


# ----------------------------------------------------------------------
# Structured logging


class TestLogging:
    def test_json_lines_carry_extras(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        try:
            get_logger("sweep").info("cell done", extra={"cell": "a/b"})
        finally:
            configure_logging("warning")  # restore the default
        payload = json.loads(stream.getvalue().strip())
        assert payload["msg"] == "cell done"
        assert payload["logger"] == "repro.sweep"
        assert payload["level"] == "info"
        assert payload["cell"] == "a/b"

    def test_line_format_inlines_extras(self):
        stream = io.StringIO()
        configure_logging("warning", json_mode=False, stream=stream)
        try:
            get_logger("service").warning("shed", extra={"session": 3})
        finally:
            configure_logging("warning")
        line = stream.getvalue()
        assert "repro.service: shed" in line and "session=3" in line

    def test_reconfigure_replaces_handler(self):
        configure_logging("info")
        root = configure_logging("warning")
        try:
            ours = [h for h in root.handlers
                    if getattr(h, "_repro_handler", False)]
            assert len(ours) == 1
        finally:
            configure_logging("warning")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_json_formatter_survives_unserialisable_extra(self):
        record = logging.LogRecord("repro.x", logging.INFO, "f", 1, "m",
                                   (), None)
        record.weird = object()
        payload = json.loads(JsonFormatter().format(record))
        assert payload["weird"].startswith("<object object")


# ----------------------------------------------------------------------
# Traced serving: bit-identical decisions + scrapeable metrics


class _ServerThread:
    """A DecisionService (with obs attachments) on a daemon thread."""

    def __init__(self, service):
        self.service = service
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def _http_get(port, path, accept=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        headers = {"Accept": accept} if accept else {}
        conn.request("GET", path, headers=headers)
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), \
            response.read().decode("utf-8")
    finally:
        conn.close()


class TestTracedService:
    def test_traced_serving_is_bit_identical_and_scrapeable(self, tmp_path):
        from repro.service.replay import replay_trace
        from repro.service.server import DecisionService, ServiceConfig
        from repro.telemetry import EpochTraceRecorder, TelemetryConfig

        trace_path = tmp_path / "offline.jsonl"
        recorder = EpochTraceRecorder(TelemetryConfig(
            ring_size=0, jsonl_path=str(trace_path),
            record_pc_attribution=False, record_observations=True,
        ))
        task = small_task(max_epochs=20)
        with recorder:
            run_task(task, recorder=recorder)

        registry = MetricsRegistry()
        tracer = Tracer(ring_size=0, registry=registry)
        drift = DriftMonitor(DriftConfig(window=8, min_count=4),
                             registry=registry, tracer=tracer)
        service = DecisionService(
            ServiceConfig(port=0, health_port=0),
            registry=registry, tracer=tracer, drift=drift,
        )
        server = _ServerThread(service)
        try:
            report = replay_trace(str(trace_path), port=service.port)
            assert report.bit_identical, report.render()
            assert report.decisions_compared > 0

            health_port = service.health_port
            status, ctype, text = _http_get(
                health_port, "/metrics?format=prometheus"
            )
            assert status == 200 and ctype.startswith("text/plain")
            samples = parse_exposition(text)
            assert any(
                name == "service_batch_size_bucket" for name, _ in samples
            )
            decisions = next(
                v for (name, _), v in samples.items()
                if name == "service_decisions"
            )
            assert decisions == report.decisions_compared
        finally:
            server.stop()

        spans = [r for r in tracer.records if r["type"] == "span"]
        names = {s["name"] for s in spans}
        assert {"connect", "session", "request", "decision"} <= names
        requests = [s for s in spans if s["name"] == "request"]
        assert len(requests) == report.decisions_compared
        session_ids = {s["span_id"] for s in spans if s["name"] == "session"}
        assert all(r["parent_id"] in session_ids for r in requests)
        decisions = [s for s in spans if s["name"] == "decision"]
        request_ids = {r["span_id"] for r in requests}
        assert all(d["parent_id"] in request_ids for d in decisions)
        # Admitted observations feed the shed_rate window.
        assert drift.mean("shed_rate") == 0.0


# ----------------------------------------------------------------------
# CLI surface


class TestObsCli:
    def test_metrics_from_snapshot_checks_and_renders(self, tmp_path, capsys):
        from repro.cli import main

        reg = MetricsRegistry()
        reg.inc("sweep_cells_total", 5)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(reg.to_dict()))
        assert main(["metrics", str(path), "--check"]) == 0
        out = capsys.readouterr()
        assert "exposition OK" in out.err
        assert parse_exposition(out.out)[("sweep_cells_total", "")] == 5

    def test_metrics_requires_one_source(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="exactly one"):
            main(["metrics"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["metrics", "x.json", "--url", "h:1"])

    def test_monitor_summarises_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "stream.jsonl"
        with Tracer(ring_size=0, jsonl_path=str(path)) as tr:
            tr.finish(tr.start("run"))
        assert main(["monitor", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records=2" in out and "spans=1" in out

    def test_trace_cli_spans_and_drift(self, tmp_path, capsys):
        from repro.cli import main

        spans = tmp_path / "spans.jsonl"
        perfetto = tmp_path / "trace.json"
        rc = main([
            "trace", "dgemm", "--design", "PCSTALL",
            "--cus", "2", "--waves", "4", "--scale", "0.12",
            "--max-epochs", "6", "--no-cache",
            "--spans", str(spans), "--drift", "--perfetto", str(perfetto),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spans streamed" in out and "drift:" in out

        records = [json.loads(line)
                   for line in spans.read_text().splitlines()]
        validate_records(records)
        assert any(r["type"] == "span" and r["name"] == "run"
                   for r in records)

        from repro.telemetry import validate_trace_json

        counts = validate_trace_json(perfetto)
        assert counts["X"] > 0
