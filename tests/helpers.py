"""Shared test helper functions (import side of tests/conftest.py)."""

from __future__ import annotations

from repro.gpu.isa import ProgramBuilder, barrier, load, valu, waitcnt
from repro.gpu.kernel import Kernel, WorkgroupGeometry


def make_loop_program(
    n_valu: int = 8,
    n_loads: int = 2,
    l1_hit: float = 0.5,
    trips: int = 50,
    with_barrier: bool = False,
    name: str = "loop",
):
    """A simple loop kernel body used across tests."""
    b = ProgramBuilder()
    top = b.label()
    for _ in range(n_valu):
        b.emit(valu())
    for _ in range(n_loads):
        b.emit(load(l1_hit, 0.5))
    b.emit(waitcnt(0))
    if with_barrier:
        b.emit(barrier())
    b.loop_back(top, trips=trips)
    return b.build(name)


def make_kernel(program, n_workgroups=4, waves_per_workgroup=2) -> Kernel:
    return Kernel.homogeneous(program, WorkgroupGeometry(n_workgroups, waves_per_workgroup))
