"""Workload generator and the 16-app suite."""

import pytest

from repro.config import small_config
from repro.gpu.gpu import Gpu
from repro.gpu.isa import InstructionKind
from repro.workloads.generator import (
    KernelSpec,
    PhaseSpec,
    build_kernel,
    build_program,
    build_workload,
)
from repro.workloads.suite import (
    HPC_WORKLOADS,
    MI_WORKLOADS,
    WORKLOADS,
    workload,
    workload_names,
)


class TestPhaseSpec:
    def test_defaults_valid(self):
        PhaseSpec()

    def test_rejects_empty_body(self):
        with pytest.raises(ValueError):
            PhaseSpec(valu=0, loads=0, stores=0)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            PhaseSpec(iterations=0)

    def test_rejects_bad_fence(self):
        with pytest.raises(ValueError):
            PhaseSpec(fence_every=0)


class TestBuildProgram:
    def test_unrolled_phase_repeats_body(self):
        one = build_program([PhaseSpec(valu=4, loads=1, iterations=1)])
        many = build_program([PhaseSpec(valu=4, loads=1, iterations=5)])
        assert len(many) > len(one) * 3

    def test_looped_phase_stays_small(self):
        looped = build_program([PhaseSpec(valu=4, loads=1, iterations=50, unroll=False)])
        unrolled = build_program([PhaseSpec(valu=4, loads=1, iterations=50)])
        assert len(looped) < len(unrolled) / 5

    def test_outer_loop_emitted(self):
        p = build_program([PhaseSpec(valu=2, loads=0)], outer_iterations=10)
        kinds = [i.kind for i in p.instructions]
        assert InstructionKind.BRANCH in kinds

    def test_fences_present(self):
        p = build_program([PhaseSpec(valu=2, loads=4, fence_every=2, iterations=1)])
        waits = sum(1 for i in p.instructions if i.kind is InstructionKind.WAITCNT)
        assert waits == 2

    def test_barrier_at_phase_end(self):
        p = build_program([PhaseSpec(valu=2, loads=0, barrier_at_end=True, iterations=3)])
        barriers = sum(1 for i in p.instructions if i.kind is InstructionKind.BARRIER)
        assert barriers == 1  # per phase, after all unrolled iterations

    def test_preamble_stagger(self):
        base = build_program([PhaseSpec(valu=2, loads=0)])
        staggered = build_program([PhaseSpec(valu=2, loads=0)], preamble_valu=7)
        assert len(staggered) == len(base) + 7

    def test_jitter_passed_to_instructions(self):
        p = build_program([PhaseSpec(valu=1, loads=1, pattern_jitter=0.9, iterations=1)])
        loads = [i for i in p.instructions if i.kind is InstructionKind.LOAD]
        assert loads[0].pattern_jitter == pytest.approx(0.9)


class TestBuildKernel:
    def test_scale_shrinks_work(self):
        spec = KernelSpec("k", (PhaseSpec(valu=4, loads=1),), outer_iterations=40)
        full = build_kernel(spec, scale=1.0)
        half = build_kernel(spec, scale=0.5)
        # Outer loop trips differ, program length identical.
        assert len(full.variants[0]) == len(half.variants[0])
        full_branch = [i for i in full.variants[0].instructions if i.kind is InstructionKind.BRANCH][-1]
        half_branch = [i for i in half.variants[0].instructions if i.kind is InstructionKind.BRANCH][-1]
        assert full_branch.trip_count > half_branch.trip_count

    def test_variants_generated(self):
        spec = KernelSpec(
            "k", (PhaseSpec(valu=8, loads=2),), n_variants=4, variant_jitter=0.4, seed=7
        )
        kernel = build_kernel(spec)
        assert len(kernel.variants) == 4
        lengths = {len(v) for v in kernel.variants}
        assert len(lengths) > 1  # jitter changed the bodies

    def test_deterministic_for_same_seed(self):
        spec = KernelSpec("k", (PhaseSpec(valu=8, loads=2),), n_variants=3, variant_jitter=0.5, seed=9)
        a = build_kernel(spec)
        b = build_kernel(spec)
        assert [len(v) for v in a.variants] == [len(v) for v in b.variants]

    def test_stagger_offsets_variants(self):
        spec = KernelSpec("k", (PhaseSpec(valu=4, loads=0),), n_variants=3, stagger_valu=10)
        kernel = build_kernel(spec)
        lengths = [len(v) for v in kernel.variants]
        assert lengths[1] - lengths[0] == 10
        assert lengths[2] - lengths[1] == 10


class TestSuite:
    def test_sixteen_workloads(self):
        assert len(WORKLOADS) == 16
        assert len(HPC_WORKLOADS) == 9
        assert len(MI_WORKLOADS) == 7

    def test_table2_names_present(self):
        expected = {
            "comd", "hpgmg", "lulesh", "minife", "xsbench", "hacc", "quickS",
            "pennant", "snapc", "dgemm", "BwdBN", "BwdPool", "BwdSoft",
            "FwdBN", "FwdPool", "FwdSoft",
        }
        assert set(workload_names()) == expected

    def test_kernel_counts_match_table2(self):
        assert len(workload("lulesh").kernels) == 27
        assert len(workload("minife").kernels) == 3
        assert len(workload("hacc").kernels) == 2
        assert len(workload("pennant").kernels) == 5
        assert len(workload("dgemm").kernels) == 1

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("nope")

    def test_all_workloads_build(self):
        for name in workload_names():
            ks = build_workload(workload(name), scale=0.1)
            assert ks, name

    def test_code_fits_pc_table_coverage(self):
        """Bodies should be a few hundred instructions (Section 4.4)."""
        for name in workload_names():
            for kernel in build_workload(workload(name), scale=0.1):
                assert kernel.static_instruction_count() < 1500, kernel.name

    @pytest.mark.parametrize("name", ["comd", "xsbench", "dgemm", "BwdPool"])
    def test_workload_runs_on_gpu(self, name):
        cfg = small_config()
        gpu = Gpu(cfg.gpu, 1.7)
        for kernel in build_workload(workload(name), scale=0.05):
            gpu.load_kernel(kernel)
            for _ in range(200):
                if gpu.done:
                    break
                gpu.run_epoch(1000.0)
        assert gpu.done, name

    def test_compute_vs_memory_character(self):
        """dgemm's runtime must scale with frequency far more than
        xsbench's (speedup at 2.2 vs 1.3 GHz)."""
        cfg = small_config()

        def speedup(name):
            times = {}
            for f in (1.3, 2.2):
                gpu = Gpu(cfg.gpu, f)
                kernels = build_workload(workload(name), scale=0.2)
                gpu.load_kernel(kernels[0])
                pending = kernels[1:]
                for _ in range(400):
                    if gpu.done:
                        if not pending:
                            break
                        gpu.load_kernel(pending.pop(0))
                    gpu.run_epoch(1000.0)
                assert gpu.done
                times[f] = gpu.completion_time
            return times[1.3] / times[2.2]

        assert speedup("dgemm") > speedup("xsbench") + 0.15
