"""The examples/ directory stays runnable.

``quickstart.py`` is executed end-to-end (it is the README's first
contact with the library); the other examples are slower sweeps, so
they are only imported - which still catches renamed APIs, moved
modules and syntax rot, since every example guards its driver behind
``if __name__ == "__main__"``.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

ALL_EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)
IMPORT_ONLY = [name for name in ALL_EXAMPLES if name != "quickstart.py"]


def test_every_example_is_covered():
    """A new example lands in exactly one of the two buckets below."""
    assert "quickstart.py" in ALL_EXAMPLES
    assert set(ALL_EXAMPLES) == {"quickstart.py", *IMPORT_ONLY}


def test_quickstart_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    # The table and its verdict line made it out.
    assert "PCSTALL" in proc.stdout
    assert "ED2P" in proc.stdout


@pytest.mark.parametrize("name", IMPORT_ONLY)
def test_example_imports(name):
    path = os.path.join(EXAMPLES_DIR, name)
    module_name = f"examples_{name[:-3]}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Importing must not run the driver: each example needs a guard.
    assert hasattr(module, "main") or hasattr(module, "__name__")
    with open(path, "r", encoding="utf-8") as handle:
        assert 'if __name__ == "__main__":' in handle.read(), (
            f"{name} lacks a __main__ guard; importing it would run the sweep"
        )
