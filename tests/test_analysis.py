"""Analysis drivers: sensitivity profiling, variability, linearity."""

import pytest

from repro.analysis.linearity import linearity_study
from repro.analysis.phases import (
    consecutive_epoch_change,
    offset_bits_sweep,
    profile_sensitivity,
    same_pc_iteration_change,
    wavefront_contributions,
    wavefront_slot_change,
)
from repro.config import small_config
from repro.workloads import build_workload, workload


@pytest.fixture(scope="module")
def cfg():
    return small_config()


@pytest.fixture(scope="module")
def comd_trace(cfg):
    kernels = build_workload(workload("comd"), scale=0.2)
    return profile_sensitivity(kernels, cfg, max_epochs=18, workload_name="comd")


class TestProfile:
    def test_trace_structure(self, comd_trace, cfg):
        assert comd_trace.workload == "comd"
        assert len(comd_trace.epochs) > 5
        e = comd_trace.epochs[0]
        assert len(e.cu_slopes) == cfg.gpu.n_cus
        assert len(e.domain_slopes) == cfg.gpu.n_domains

    def test_wave_observations_have_pcs_and_ranks(self, comd_trace):
        waves = [w for e in comd_trace.epochs for w in e.waves]
        assert waves
        assert any(w.start_pc_idx > 0 for w in waves)
        assert all(w.age_rank >= 0 for w in waves)

    def test_gpu_slope_is_cu_sum(self, comd_trace):
        e = comd_trace.epochs[0]
        assert e.gpu_slope == pytest.approx(sum(e.cu_slopes))

    def test_series_extraction(self, comd_trace):
        s = comd_trace.cu_series(0)
        assert len(s) == len(comd_trace.epochs)


class TestVariability:
    def test_consecutive_change_positive(self, comd_trace):
        assert consecutive_epoch_change(comd_trace, "cu") > 0.0

    def test_wavefront_level_higher_than_cu(self, comd_trace):
        """Per-wavefront sensitivity varies more than CU aggregate."""
        assert consecutive_epoch_change(comd_trace, "wf") >= consecutive_epoch_change(
            comd_trace, "cu"
        ) * 0.8

    def test_same_pc_less_variable_than_consecutive(self, comd_trace):
        """The paper's central observation (Fig 10 vs Fig 7): same-PC
        iterations are much more stable than consecutive epochs."""
        same_pc = same_pc_iteration_change(comd_trace, "wf")
        consecutive = consecutive_epoch_change(comd_trace, "wf")
        assert same_pc < consecutive

    def test_granularities_accepted(self, comd_trace):
        for g in ("wf", "cu", "gpu"):
            v = same_pc_iteration_change(comd_trace, g)
            assert 0.0 <= v <= 2.0

    def test_bad_granularity_rejected(self, comd_trace):
        with pytest.raises(ValueError):
            same_pc_iteration_change(comd_trace, "banana")

    def test_bad_level_rejected(self, comd_trace):
        with pytest.raises(ValueError):
            consecutive_epoch_change(comd_trace, "banana")

    def test_offset_sweep_returns_all_offsets(self, comd_trace):
        sweep = offset_bits_sweep(comd_trace, offsets=(0, 4, 8))
        assert set(sweep) == {0, 4, 8}

    def test_slot_profile_length(self, comd_trace):
        prof = wavefront_slot_change(comd_trace, max_slots=8)
        assert len(prof) == 8

    def test_wavefront_contributions_shape(self, comd_trace):
        contrib = wavefront_contributions(comd_trace, cu_id=0, max_slots=4)
        assert len(contrib) == 4
        assert all(len(s) == len(comd_trace.epochs) for s in contrib)


class TestSlopeFloors:
    def test_floors_positive_for_active_trace(self, comd_trace):
        assert comd_trace.cu_slope_floor() > 0.0
        assert comd_trace.wave_slope_floor() > 0.0

    def test_floor_scales_with_fraction(self, comd_trace):
        assert comd_trace.cu_slope_floor(0.10) == pytest.approx(
            2 * comd_trace.cu_slope_floor(0.05)
        )

    def test_floor_below_typical_slopes(self, comd_trace):
        """The noise floor must not swallow real sensitivity levels."""
        peak = max(max(comd_trace.cu_series(c)) for c in range(4))
        assert comd_trace.cu_slope_floor() < peak / 3


class TestLinearity:
    def test_fig5_linearity(self, cfg):
        kernels = build_workload(workload("comd"), scale=0.2)
        res = linearity_study(kernels, cfg, sample_epochs=(2, 5, 8), max_epochs=12)
        assert len(res.epochs) == 3
        # Paper reports mean R^2 of 0.82; require clear linearity.
        assert res.mean_r_squared > 0.6

    def test_points_cover_grid(self, cfg):
        kernels = build_workload(workload("comd"), scale=0.2)
        res = linearity_study(kernels, cfg, sample_epochs=(2,), max_epochs=5)
        freqs = [p[0] for p in res.epochs[0].points]
        assert freqs[0] == cfg.dvfs.f_min
        assert freqs[-1] == cfg.dvfs.f_max

    def test_extra_frequencies_included(self, cfg):
        kernels = build_workload(workload("comd"), scale=0.2)
        res = linearity_study(
            kernels, cfg, sample_epochs=(2,), extra_freqs_ghz=(0.8, 3.0), max_epochs=5
        )
        freqs = [p[0] for p in res.epochs[0].points]
        assert 0.8 in freqs and 3.0 in freqs
