"""Objectives: frequency selection under EDnP, performance caps, static."""

import pytest

from repro.config import PowerConfig, default_frequency_grid
from repro.core.objectives import (
    EDnPObjective,
    ObjectiveContext,
    PerformanceCapObjective,
    StaticObjective,
)
from repro.core.sensitivity import LinearSensitivity
from repro.power.model import PowerModel

GRID = default_frequency_grid()


@pytest.fixture
def ctx():
    return ObjectiveContext(
        power=PowerModel(PowerConfig()),
        epoch_ns=1000.0,
        n_cus_in_domain=1,
        issue_width=2,
        memory_power_share=0.5,
        reference_freq_ghz=1.7,
    )


def flat_line(commits=1000.0):
    """A fully memory-bound phase: commits do not react to frequency."""
    return LinearSensitivity(commits, 0.0)


def compute_line(ipc_slots=0.5):
    """A fully compute-bound phase: commits proportional to frequency."""
    # commits = slope * f with slope sized to a plausible occupancy.
    return LinearSensitivity(0.0, ipc_slots * 2 * 1000.0)


class TestStatic:
    def test_always_fixed(self, ctx):
        obj = StaticObjective(1.7)
        assert obj.choose(flat_line(), GRID, 2.2, ctx) == pytest.approx(1.7)
        assert obj.choose(None, GRID, 2.2, ctx) == pytest.approx(1.7)


class TestEDnP:
    def test_memory_bound_picks_min_frequency(self, ctx):
        obj = EDnPObjective(2)
        assert obj.choose(flat_line(), GRID, 1.7, ctx) == pytest.approx(GRID[0])

    def test_compute_bound_picks_high_frequency(self, ctx):
        obj = EDnPObjective(2)
        chosen = obj.choose(compute_line(), GRID, 1.7, ctx)
        assert chosen >= 1.7

    def test_edp_more_conservative_than_ed2p(self, ctx):
        line = compute_line()
        f_edp = EDnPObjective(1).choose(line, GRID, 1.7, ctx)
        f_ed2p = EDnPObjective(2).choose(line, GRID, 1.7, ctx)
        assert f_edp <= f_ed2p

    def test_none_prediction_holds_current(self, ctx):
        obj = EDnPObjective(2)
        assert obj.choose(None, GRID, 1.9, ctx) == pytest.approx(1.9)

    def test_mixed_phase_interior_choice(self, ctx):
        obj = EDnPObjective(2)
        mixed = LinearSensitivity(500.0, 300.0)
        chosen = obj.choose(mixed, GRID, 1.7, ctx)
        assert GRID[0] <= chosen <= GRID[-1]

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            EDnPObjective(-1)

    def test_rejects_bad_price_scale(self):
        with pytest.raises(ValueError):
            EDnPObjective(2, price_scale=0.0)

    def test_higher_price_scale_boosts_more(self, ctx):
        mixed = LinearSensitivity(400.0, 400.0)
        lo = EDnPObjective(2, price_scale=0.5).choose(mixed, GRID, 1.7, ctx)
        hi = EDnPObjective(2, price_scale=2.0).choose(mixed, GRID, 1.7, ctx)
        assert lo <= hi

    def test_names(self):
        assert EDnPObjective(1).name == "EDP"
        assert EDnPObjective(2).name == "ED2P"


class TestPerformanceCap:
    def test_memory_bound_drops_to_min_energy(self, ctx):
        obj = PerformanceCapObjective(0.05)
        # Flat line: every frequency meets the cap; lowest power wins.
        assert obj.choose(flat_line(), GRID, 1.7, ctx) == pytest.approx(GRID[0])

    def test_compute_bound_stays_near_max(self, ctx):
        obj = PerformanceCapObjective(0.05)
        chosen = obj.choose(compute_line(), GRID, 1.7, ctx)
        # Pure compute: commits drop linearly with f; 5% cap allows only
        # a small step down from 2.2.
        assert chosen >= 2.0

    def test_larger_cap_allows_lower_frequency(self, ctx):
        line = compute_line()
        f5 = PerformanceCapObjective(0.05).choose(line, GRID, 1.7, ctx)
        f10 = PerformanceCapObjective(0.10).choose(line, GRID, 1.7, ctx)
        assert f10 <= f5

    def test_none_prediction_runs_at_max(self, ctx):
        obj = PerformanceCapObjective(0.05)
        assert obj.choose(None, GRID, 1.3, ctx) == pytest.approx(GRID[-1])

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            PerformanceCapObjective(1.0)
        with pytest.raises(ValueError):
            PerformanceCapObjective(-0.1)


class TestObjectiveContext:
    def test_activity_bounded(self, ctx):
        line = LinearSensitivity(1e9, 0.0)
        assert ctx.predicted_activity(line, 1.7) == 1.0
        assert ctx.predicted_activity(LinearSensitivity(0.0, 0.0), 1.7) == 0.0

    def test_domain_power_includes_memory_share(self, ctx):
        p = ctx.domain_power(flat_line(0.0), 1.3)
        assert p > ctx.memory_power_share
