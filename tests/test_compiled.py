"""Compiled decode tables: lossless, bit-identical, shared, cache-stable.

The event engine executes :class:`~repro.gpu.isa.CompiledProgram` flat
arrays while the reference engine keeps dataclass decode, so the
engine-equivalence suite already proves the two decode paths agree on
timing. These tests pin the table itself: round-tripping back to the
exact instruction list for arbitrary programs, bit-identical
per-frequency costs, structural sharing across clone/snapshot, and
stable cache keys.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.gpu.gpu import Gpu
from repro.gpu.isa import (
    CompiledProgram,
    Instruction,
    InstructionKind,
    Program,
    compile_program,
    barrier,
    branch,
    endpgm,
    load,
    salu,
    store,
    valu,
    waitcnt,
)
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.runtime.cache import canonicalize

from helpers import make_loop_program

DETERMINISTIC = settings(derandomize=True, database=None, max_examples=60)

_RATE = st.floats(0.0, 1.0, allow_nan=False)

_PLAIN_INSTRS = st.one_of(
    st.builds(valu, cycles=st.integers(1, 8)),
    st.builds(salu, cycles=st.integers(1, 4)),
    st.builds(load, l1_hit_rate=_RATE, l2_hit_rate=_RATE, pattern_jitter=_RATE),
    st.builds(store, l1_hit_rate=_RATE, l2_hit_rate=_RATE, pattern_jitter=_RATE),
    st.builds(waitcnt, target=st.integers(0, 4)),
    st.builds(barrier),
)


@st.composite
def programs(draw) -> Program:
    """Arbitrary valid programs: mixed body, backwards branches, ENDPGM."""
    instrs = list(draw(st.lists(_PLAIN_INSTRS, min_size=1, max_size=12)))
    for _ in range(draw(st.integers(0, 2))):
        target = draw(st.integers(0, len(instrs) - 1))
        instrs.append(branch(target, draw(st.integers(0, 5))))
    instrs.append(endpgm())
    return Program.from_list(instrs, name=draw(st.sampled_from(["k", "loop"])))


class TestRoundTrip:
    @DETERMINISTIC
    @given(program=programs())
    def test_decompile_is_lossless(self, program):
        assert program.compiled.decompile() == program.instructions

    @DETERMINISTIC
    @given(program=programs())
    def test_flat_arrays_mirror_instructions(self, program):
        cp = program.compiled
        assert len(cp) == len(program)
        for pc, instr in enumerate(program.instructions):
            assert cp.kinds[pc] == int(instr.kind)
            assert cp.cycles[pc] == instr.cycles
            assert cp.batchable[pc] == (
                instr.kind in (InstructionKind.VALU, InstructionKind.SALU,
                               InstructionKind.BRANCH)
            )

    @DETERMINISTIC
    @given(program=programs(), freq=st.floats(0.5, 3.0, allow_nan=False))
    def test_costs_bit_identical_to_dataclass_decode(self, program, freq):
        cycle = 1.0 / freq
        costs = program.compiled.costs_for(cycle)
        for pc, instr in enumerate(program.instructions):
            assert costs[pc] == instr.cycles * cycle

    def test_cost_tables_cached_per_cycle_period(self):
        cp = make_loop_program().compiled
        assert cp.costs_for(0.5) is cp.costs_for(0.5)
        assert cp.costs_for(0.5) is not cp.costs_for(0.25)


class TestIdentityAndSharing:
    def test_compiled_is_cached_on_the_program(self):
        p = make_loop_program()
        assert p.compiled is p.compiled
        assert compile_program(p) is p.compiled
        assert p.compiled.source is p

    def test_equal_programs_compare_equal_compiled(self):
        a = make_loop_program()
        b = make_loop_program()
        assert a is not b
        assert a.compiled == b.compiled
        assert hash(a.compiled) == hash(b.compiled)

    def test_waves_share_one_table_across_clone_and_snapshot(self):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        gpu = Gpu(cfg.gpu)
        kern = Kernel.homogeneous(make_loop_program(trips=500), WorkgroupGeometry(4, 2))
        gpu.load_kernel(kern)
        gpu.run_epoch(500.0)
        tables = {id(wf.code) for cu in gpu.cus for wf in cu.waves}
        assert len(tables) == 1
        clone = gpu.clone()
        assert {id(wf.code) for cu in clone.cus for wf in cu.waves} == tables
        snap = gpu.snapshot()
        gpu.run_epoch(500.0)
        before = [wf for cu in gpu.cus for wf in cu.waves]
        gpu.restore(snap)
        after = [wf for cu in gpu.cus for wf in cu.waves]
        # Restore reuses resident wavefront objects (table identity match).
        assert {id(w) for w in after} <= {id(w) for w in before}
        assert {id(wf.code) for wf in after} == tables

    def test_program_pickle_drops_the_cache(self):
        p = make_loop_program()
        _ = p.compiled
        p2 = pickle.loads(pickle.dumps(p))
        assert p2 == p
        assert "_compiled" not in p2.__dict__

    def test_compiled_pickle_rebuilds_through_the_cache(self):
        cp = make_loop_program().compiled
        cp2 = pickle.loads(pickle.dumps(cp))
        assert cp2 == cp
        assert cp2.source.compiled is cp2

    def test_gpu_with_loaded_kernel_pickles(self):
        cfg = small_config(n_cus=1, waves_per_cu=2)
        gpu = Gpu(cfg.gpu)
        gpu.load_kernel(Kernel.homogeneous(make_loop_program(), WorkgroupGeometry(2, 2)))
        gpu.run_epoch(200.0)
        gpu2 = pickle.loads(pickle.dumps(gpu))
        gpu.run_epoch(300.0)
        gpu2.run_epoch(300.0)
        assert [cu.stats.capture() for cu in gpu.cus] == [
            cu.stats.capture() for cu in gpu2.cus
        ]


class TestCacheKeys:
    def test_compiled_canonicalises_as_its_source(self):
        p = make_loop_program()
        assert canonicalize(p.compiled) == canonicalize(p)

    @DETERMINISTIC
    @given(program=programs())
    def test_canonical_equivalence_for_arbitrary_programs(self, program):
        assert canonicalize(program.compiled) == canonicalize(program)


class TestDecompiledEquivalence:
    def test_decompiled_program_runs_bit_identical(self):
        """A program rebuilt from the flat arrays drives the simulator to
        exactly the same state as the original."""
        cfg = small_config(n_cus=2, waves_per_cu=4)
        prog = make_loop_program(trips=800)
        rebuilt = Program.from_list(prog.compiled.decompile(), name=prog.name)
        states = []
        for p in (prog, rebuilt):
            gpu = Gpu(cfg.gpu)
            gpu.load_kernel(Kernel.homogeneous(p, WorkgroupGeometry(4, 2)))
            for _ in range(10):
                gpu.run_epoch(1000.0)
            states.append([
                (cu.now, cu.stats.capture(),
                 tuple((wf.wf_id, wf.pc_idx, wf.ready_at) for wf in cu.waves))
                for cu in gpu.cus
            ])
        assert states[0] == states[1]
