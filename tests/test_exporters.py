"""Chrome-trace/Perfetto exporter contract.

The exported JSON must satisfy the viewer contract (required
``ph``/``ts``/``pid``/``name`` fields, non-negative durations, monotone
per-track timestamps, matched ``B``/``E`` pairs) - pinned here both for
real exports (epoch records, span records, alerts) and for
:func:`~repro.telemetry.exporters.validate_trace_events` itself, which
CI runs over uploaded artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.config import small_config
from repro.obs import Tracer
from repro.runtime.executor import SweepTask, run_task
from repro.telemetry import (
    EpochTraceRecorder,
    TelemetryConfig,
    perfetto_trace,
    save_perfetto_json,
    validate_trace_events,
    validate_trace_json,
)


def record_small_run(tracer=None, max_epochs=6):
    task = SweepTask(
        "dgemm",
        "PCSTALL",
        small_config(n_cus=2, waves_per_cu=4),
        scale=0.12,
        max_epochs=max_epochs,
        oracle_sample_freqs=3,
        collect_accuracy=True,
    )
    recorder = EpochTraceRecorder(TelemetryConfig(ring_size=4096))
    with recorder:
        run_task(task, recorder=recorder, tracer=tracer)
    return recorder


SPAN_RECORDS = [
    {"type": "trace", "trace_id": "t1", "schema_version": 1,
     "repro_version": "0"},
    {"type": "span", "trace_id": "t1", "span_id": "1", "parent_id": "",
     "name": "sweep", "t_start_ns": 1_000_000, "t_end_ns": 9_000_000,
     "attrs": {"n_tasks": 2}},
    {"type": "span", "trace_id": "t1", "span_id": "2", "parent_id": "1",
     "name": "cell", "t_start_ns": 1_500_000, "t_end_ns": 5_000_000,
     "attrs": {}},
    {"type": "span", "trace_id": "t1", "span_id": "2.1", "parent_id": "2",
     "name": "run", "t_start_ns": 2_000_000, "t_end_ns": 4_000_000,
     "attrs": {}},
    {"type": "alert", "signal": "rel_error", "kind": "alert", "value": 0.8,
     "threshold": 0.5, "window_count": 16, "at_index": 40},
]


class TestEpochExport:
    def test_real_export_passes_the_contract(self):
        recorder = record_small_run()
        trace = perfetto_trace(recorder.records)
        counts = validate_trace_events(trace["traceEvents"])
        assert counts["M"] >= 3  # process + one thread per domain
        assert counts["X"] > 0 and counts["C"] > 0
        assert trace["otherData"]["workload"] == "dgemm"

    def test_domain_slices_carry_decision_args(self):
        recorder = record_small_run()
        trace = perfetto_trace(recorder.records)
        slices = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "epoch"]
        assert slices
        for event in slices:
            assert event["pid"] == 0 and event["tid"] >= 1
            assert event["dur"] >= 0
            assert "pred_commits" in event["args"]
            assert "rel_error" in event["args"]

    def test_save_round_trips_through_file_validator(self, tmp_path):
        recorder = record_small_run()
        path = tmp_path / "trace.json"
        n = save_perfetto_json(recorder.records, path)
        counts = validate_trace_json(path)
        assert sum(counts.values()) == n


class TestSpanExport:
    def test_spans_render_on_their_own_process(self):
        trace = perfetto_trace(SPAN_RECORDS)
        events = trace["traceEvents"]
        validate_trace_events(events)

        procs = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "repro spans" in procs
        slices = {e["args"]["span_id"]: e for e in events
                  if e["ph"] == "X" and e.get("cat") == "span"}
        assert set(slices) == {"1", "2", "2.1"}
        # Wall timestamps are re-anchored: the earliest span starts at 0.
        assert slices["1"]["ts"] == 0.0
        assert slices["1"]["dur"] == pytest.approx(8000.0)  # us
        # Root-tracer spans and the worker ("2.*") get separate lanes.
        assert slices["1"]["tid"] == slices["2"]["tid"]
        assert slices["2.1"]["tid"] != slices["1"]["tid"]
        assert slices["2.1"]["args"]["parent_id"] == "2"

    def test_alert_renders_as_instant_pinned_to_last_span(self):
        trace = perfetto_trace(SPAN_RECORDS)
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "drift rel_error (alert)"
        assert instant["s"] == "p"
        # Pinned to the end of the last span in stream order (the run
        # span, ending 3 ms after the anchor).
        assert instant["ts"] == pytest.approx(3000.0)
        assert instant["args"]["value"] == 0.8

    def test_merged_epoch_and_span_streams_validate(self, tmp_path):
        tracer = Tracer(ring_size=0)
        recorder = record_small_run(tracer=tracer)
        merged = list(recorder.records) + list(tracer.records)
        path = tmp_path / "merged.json"
        save_perfetto_json(merged, path)
        counts = validate_trace_json(path)
        run_spans = [
            e for e in json.loads(path.read_text())["traceEvents"]
            if e.get("cat") == "span" and e["name"] == "run"
        ]
        assert len(run_spans) == 1
        assert counts["X"] > counts["M"]


class TestValidator:
    def base(self):
        return [
            {"ph": "M", "name": "process_name", "pid": 0,
             "args": {"name": "p"}},
            {"ph": "X", "name": "a", "pid": 0, "tid": 1, "ts": 0.0,
             "dur": 5.0},
            {"ph": "X", "name": "b", "pid": 0, "tid": 1, "ts": 2.0,
             "dur": 1.0},
        ]

    def test_accepts_well_formed_events(self):
        assert validate_trace_events(self.base()) == {"M": 1, "X": 2}

    def test_matched_b_e_pairs_accepted(self):
        events = [
            {"ph": "B", "name": "outer", "pid": 0, "tid": 1, "ts": 0.0},
            {"ph": "B", "name": "inner", "pid": 0, "tid": 1, "ts": 1.0},
            {"ph": "E", "name": "inner", "pid": 0, "tid": 1, "ts": 2.0},
            {"ph": "E", "name": "outer", "pid": 0, "tid": 1, "ts": 3.0},
        ]
        assert validate_trace_events(events) == {"B": 2, "E": 2}

    @pytest.mark.parametrize("mutate,complaint", [
        (lambda e: e[1].__setitem__("ph", "Z"), "unknown phase"),
        (lambda e: e[1].pop("name"), "missing name"),
        (lambda e: e[1].pop("pid"), "missing pid"),
        (lambda e: e[1].pop("ts"), "bad ts"),
        (lambda e: e[1].__setitem__("ts", -1.0), "bad ts"),
        (lambda e: e[2].__setitem__("ts", -0.5), "bad ts"),
        (lambda e: e[1].__setitem__("ts", 3.0), "goes backwards"),
        (lambda e: e[1].pop("tid"), "missing tid"),
        (lambda e: e[1].pop("dur"), "bad dur"),
        (lambda e: e[1].__setitem__("dur", -2.0), "bad dur"),
    ])
    def test_rejects_contract_violations(self, mutate, complaint):
        events = self.base()
        mutate(events)
        with pytest.raises(ValueError, match=complaint):
            validate_trace_events(events)

    def test_rejects_unmatched_duration_events(self):
        with pytest.raises(ValueError, match="no open B"):
            validate_trace_events([
                {"ph": "E", "name": "x", "pid": 0, "tid": 1, "ts": 0.0},
            ])
        with pytest.raises(ValueError, match="unclosed B"):
            validate_trace_events([
                {"ph": "B", "name": "x", "pid": 0, "tid": 1, "ts": 0.0},
            ])
        with pytest.raises(ValueError, match="closes B"):
            validate_trace_events([
                {"ph": "B", "name": "x", "pid": 0, "tid": 1, "ts": 0.0},
                {"ph": "E", "name": "y", "pid": 0, "tid": 1, "ts": 1.0},
            ])

    def test_validate_json_requires_event_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": []}))
        with pytest.raises(ValueError, match="no traceEvents"):
            validate_trace_json(path)
