"""Extension designs and objectives beyond TABLE III."""

import pytest

from repro.config import small_config, default_frequency_grid, PowerConfig
from repro.core.estimators import CrispModel
from repro.core.objectives import ObjectiveContext, QoSDeadlineObjective
from repro.core.predictors import ObserveContext, PhaseHistoryPredictor
from repro.core.sensitivity import LinearSensitivity
from repro.dvfs.designs import EXTENSION_DESIGNS, make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.power.model import PowerModel
from repro.workloads import build_workload, workload

from helpers import make_loop_program

GRID = default_frequency_grid()


@pytest.fixture
def cfg():
    return small_config(n_cus=2, waves_per_cu=4)


class TestHistoryPredictor:
    def _observe_epochs(self, cfg, predictor, n=6):
        gpu = Gpu(cfg.gpu, 1.7)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=3000), WorkgroupGeometry(4, 2))
        )
        ctx = ObserveContext(config=cfg.gpu, f_lo_ghz=1.3, f_hi_ghz=2.2)
        for _ in range(n):
            predictor.observe(gpu.run_epoch(1000.0), ctx)

    def test_predicts_after_history(self, cfg):
        p = PhaseHistoryPredictor(CrispModel(), cfg.gpu, history_length=2)
        self._observe_epochs(cfg, p)
        out = p.predict_domains()
        assert all(line is not None for line in out)

    def test_rejects_bad_params(self, cfg):
        with pytest.raises(ValueError):
            PhaseHistoryPredictor(CrispModel(), cfg.gpu, history_length=0)
        with pytest.raises(ValueError):
            PhaseHistoryPredictor(CrispModel(), cfg.gpu, n_levels=1)

    def test_repeating_pattern_learned(self, cfg):
        """After seeing A,B,A,B..., the pattern table fills in."""
        p = PhaseHistoryPredictor(CrispModel(), cfg.gpu, history_length=2)
        ctx = ObserveContext(config=cfg.gpu, f_lo_ghz=1.3, f_hi_ghz=2.2)
        self._observe_epochs(cfg, p, n=10)
        assert any(p._table[d] for d in range(cfg.gpu.n_domains))


class TestExtensionDesigns:
    # LEARNED needs a trained model artifact; its closed-loop run is
    # covered in test_learn.py.
    @pytest.mark.parametrize(
        "design", [d for d in EXTENSION_DESIGNS if d != "LEARNED"]
    )
    def test_extension_designs_run(self, cfg, design):
        kernels = build_workload(workload("comd"), scale=0.1)
        ctrl = make_controller(design, cfg)
        r = DvfsSimulation(kernels, ctrl, cfg, max_epochs=100,
                           collect_accuracy=True).run()
        assert r.epochs > 0
        assert r.prediction_accuracy is not None

    def test_pccrisp_is_pc_based_with_crisp(self, cfg):
        ctrl = make_controller("PCCRISP", cfg)
        assert ctrl.predictor.name == "PCCRISP"
        assert isinstance(ctrl.predictor.estimator, CrispModel)
        assert ctrl.predictor.tables


class TestQoSObjective:
    def _ctx(self):
        return ObjectiveContext(
            power=PowerModel(PowerConfig()),
            epoch_ns=1000.0,
            n_cus_in_domain=1,
            issue_width=2,
            memory_power_share=0.5,
        )

    def test_meets_reachable_target_cheaply(self):
        obj = QoSDeadlineObjective(target_commits_per_epoch=1000.0)
        line = LinearSensitivity(0.0, 1000.0)  # commits = 1000*f
        f = obj.choose(line, GRID, 1.7, self._ctx())
        assert line.predict(f) >= 1000.0
        # cheapest satisfying frequency is 1.3 (1300 commits >= 1000)
        assert f == pytest.approx(1.3)

    def test_unreachable_target_best_effort(self):
        obj = QoSDeadlineObjective(target_commits_per_epoch=1e9)
        line = LinearSensitivity(0.0, 1000.0)
        assert obj.choose(line, GRID, 1.7, self._ctx()) == GRID[-1]

    def test_none_prediction_runs_at_max(self):
        obj = QoSDeadlineObjective(100.0)
        assert obj.choose(None, GRID, 1.3, self._ctx()) == GRID[-1]

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            QoSDeadlineObjective(0.0)

    def test_end_to_end(self, cfg):
        kernels = build_workload(workload("BwdPool"), scale=0.1)
        ctrl = make_controller("PCSTALL", cfg, QoSDeadlineObjective(500.0))
        r = DvfsSimulation(kernels, ctrl, cfg, max_epochs=150).run()
        assert r.epochs > 0
