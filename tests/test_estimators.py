"""Estimation models: interval analysis and the wavefront STALL model."""

import pytest

from repro.config import GpuConfig, MemoryConfig
from repro.core.estimators import (
    ALL_CU_MODELS,
    CrispModel,
    CriticalPathModel,
    LeadingLoadModel,
    StallModel,
    WavefrontStallModel,
    interval_line,
)
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


def run_one_epoch(n_valu=8, n_loads=2, l1_hit=0.5, freq=1.7, warmup=2):
    cfg = GpuConfig(n_cus=2, waves_per_cu=4, memory=MemoryConfig(n_l2_banks=2))
    gpu = Gpu(cfg, initial_freq_ghz=freq)
    prog = make_loop_program(n_valu=n_valu, n_loads=n_loads, l1_hit=l1_hit, trips=3000)
    gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(4, 2)))
    for _ in range(warmup):
        gpu.run_epoch(1000.0)
    return gpu.run_epoch(1000.0), cfg


class TestIntervalLine:
    def test_pure_core_scales_linearly(self):
        # All core time: I(f) = I * f/f1 -> slope I/f1, i0 = 0.
        line = interval_line(170.0, 1000.0, 0.0, 1.7, 1.3, 2.2)
        assert line.i0 == pytest.approx(0.0, abs=1e-6)
        assert line.slope == pytest.approx(100.0)

    def test_pure_async_is_flat(self):
        line = interval_line(100.0, 0.0, 1000.0, 1.7, 1.3, 2.2)
        assert line.slope == pytest.approx(0.0)
        assert line.predict(2.2) == pytest.approx(100.0)

    def test_mixed_between_extremes(self):
        line = interval_line(100.0, 500.0, 500.0, 1.7, 1.3, 2.2)
        assert 0.0 < line.slope < 100.0 / 1.7

    def test_zero_commits_safe(self):
        line = interval_line(0.0, 500.0, 500.0, 1.7, 1.3, 2.2)
        assert line.predict(2.2) == 0.0

    def test_passes_through_measured_point_approximately(self):
        committed, t_core, t_async = 150.0, 600.0, 400.0
        line = interval_line(committed, t_core, t_async, 1.7, 1.3, 2.2)
        # The chord through the endpoints sits near the measurement.
        assert line.predict(1.7) == pytest.approx(committed, rel=0.05)


class TestCuModels:
    def test_all_models_produce_lines(self):
        result, cfg = run_one_epoch()
        for model in ALL_CU_MODELS:
            line = model.estimate_cu(result, 0, 1.7, 1.3, 2.2, cfg)
            assert line.predict(1.7) >= 0.0

    def test_compute_bound_epoch_estimated_sensitive(self):
        result, cfg = run_one_epoch(n_valu=30, n_loads=0)
        line = StallModel().estimate_cu(result, 0, 1.7, 1.3, 2.2, cfg)
        commits = result.cu_stats[0].committed
        # Nearly all commits should be predicted frequency-scaling.
        assert line.slope * 1.7 / commits > 0.6

    def test_memory_bound_epoch_estimated_insensitive(self):
        result, cfg = run_one_epoch(n_valu=1, n_loads=4, l1_hit=0.05)
        line = StallModel().estimate_cu(result, 0, 1.7, 1.3, 2.2, cfg)
        commits = max(result.cu_stats[0].committed, 1)
        assert line.slope * 1.7 / commits < 0.5

    def test_models_disagree_on_mixed_epochs(self):
        result, cfg = run_one_epoch(n_valu=6, n_loads=3, l1_hit=0.4)
        slopes = {m.name: m.estimate_cu(result, 0, 1.7, 1.3, 2.2, cfg).slope for m in ALL_CU_MODELS}
        assert len({round(s, 3) for s in slopes.values()}) > 1

    def test_default_wavefront_split_proportional(self):
        result, cfg = run_one_epoch()
        model = CrispModel()
        cu_line = model.estimate_cu(result, 0, 1.7, 1.3, 2.2, cfg)
        parts = model.estimate_wavefronts(result, 0, 1.7, 1.3, 2.2, cfg)
        total = sum(p.line.slope for p in parts)
        assert total == pytest.approx(cu_line.slope, rel=1e-6)


class TestWavefrontStallModel:
    def test_per_wave_estimates_sum_to_cu(self):
        result, cfg = run_one_epoch()
        model = WavefrontStallModel()
        parts = model.estimate_wavefronts(result, 0, 1.7, 1.3, 2.2, cfg)
        cu_line = model.estimate_cu(result, 0, 1.7, 1.3, 2.2, cfg)
        assert sum(p.line.slope for p in parts) == pytest.approx(cu_line.slope)

    def test_estimates_keyed_by_start_pc(self):
        result, cfg = run_one_epoch()
        model = WavefrontStallModel()
        parts = model.estimate_wavefronts(result, 0, 1.7, 1.3, 2.2, cfg)
        for p in parts:
            assert p.record.start_pc_idx == p.record.stats.epoch_start_pc_idx

    def test_age_normalisation_moves_slope(self):
        result, cfg = run_one_epoch()
        with_age = WavefrontStallModel(age_kappa=0.5).estimate_wavefronts(
            result, 0, 1.7, 1.3, 2.2, cfg
        )
        without = WavefrontStallModel(age_kappa=0.0).estimate_wavefronts(
            result, 0, 1.7, 1.3, 2.2, cfg
        )
        young_with = [p.line.slope for p in with_age if p.record.age_rank > 0]
        young_without = [p.line.slope for p in without if p.record.age_rank > 0]
        assert young_with != young_without

    def test_oldest_wave_unaffected_by_age_normalisation(self):
        result, cfg = run_one_epoch()
        a = WavefrontStallModel(age_kappa=0.5).estimate_wavefronts(result, 0, 1.7, 1.3, 2.2, cfg)
        b = WavefrontStallModel(age_kappa=0.0).estimate_wavefronts(result, 0, 1.7, 1.3, 2.2, cfg)
        oldest_a = [p.line.slope for p in a if p.record.age_rank == 0]
        oldest_b = [p.line.slope for p in b if p.record.age_rank == 0]
        assert oldest_a == pytest.approx(oldest_b)
