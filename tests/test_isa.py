"""ISA: instruction validation, program structure, the builder."""

import pytest

from repro.gpu.isa import (
    Instruction,
    InstructionKind,
    Program,
    ProgramBuilder,
    barrier,
    branch,
    endpgm,
    load,
    salu,
    store,
    valu,
    waitcnt,
)


class TestInstructionFactories:
    def test_valu_is_compute(self):
        assert valu().is_compute
        assert not valu().is_memory

    def test_load_store_are_memory(self):
        assert load().is_memory
        assert store().is_memory
        assert not load().is_compute

    def test_default_valu_cost(self):
        assert valu().cycles == 4
        assert salu().cycles == 1

    def test_waitcnt_target(self):
        assert waitcnt(3).wait_target == 3
        assert waitcnt().wait_target == 0

    def test_branch_fields(self):
        b = branch(5, 10)
        assert b.branch_target == 5
        assert b.trip_count == 10


class TestInstructionValidation:
    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.VALU, cycles=0)

    def test_rejects_bad_hit_rates(self):
        with pytest.raises(ValueError):
            load(l1_hit_rate=1.5)
        with pytest.raises(ValueError):
            load(l2_hit_rate=-0.1)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            load(pattern_jitter=2.0)

    def test_rejects_negative_trip_count(self):
        with pytest.raises(ValueError):
            branch(0, -1)


class TestProgram:
    def test_must_end_with_endpgm(self):
        with pytest.raises(ValueError):
            Program((valu(),))

    def test_must_not_be_empty(self):
        with pytest.raises(ValueError):
            Program(())

    def test_endpgm_only_at_end(self):
        with pytest.raises(ValueError):
            Program((endpgm(), valu(), endpgm()))

    def test_branch_must_be_backwards(self):
        with pytest.raises(ValueError):
            Program((branch(1, 3), valu(), endpgm()))

    def test_valid_loop(self):
        p = Program((valu(), valu(), branch(0, 3), endpgm()))
        assert len(p) == 4

    def test_pc_of_uses_instruction_bytes(self):
        p = Program((valu(), endpgm()))
        assert p.pc_of(1) == 4
        assert p.pc_of(1, instruction_bytes=8) == 8

    def test_indexing(self):
        p = Program((valu(), salu(), endpgm()))
        assert p[1].kind is InstructionKind.SALU


class TestProgramBuilder:
    def test_builds_loop(self):
        b = ProgramBuilder()
        top = b.label()
        b.emit(valu(), valu())
        b.loop_back(top, trips=5)
        p = b.build("t")
        assert p[2].kind is InstructionKind.BRANCH
        assert p[2].trip_count == 5
        assert p[-1].kind is InstructionKind.ENDPGM

    def test_label_tracks_position(self):
        b = ProgramBuilder()
        assert b.label() == 0
        b.emit(valu())
        assert b.label() == 1

    def test_builder_resets_after_build(self):
        b = ProgramBuilder()
        b.emit(valu())
        p1 = b.build("a")
        b.emit(valu(), valu())
        p2 = b.build("b")
        assert len(p1) == 2
        assert len(p2) == 3

    def test_mixed_program(self):
        b = ProgramBuilder()
        top = b.label()
        b.emit(valu(), load(0.5, 0.5), waitcnt(0), barrier())
        b.loop_back(top, trips=2)
        p = b.build()
        kinds = [i.kind for i in p.instructions]
        assert InstructionKind.BARRIER in kinds
        assert InstructionKind.WAITCNT in kinds
