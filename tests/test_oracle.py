"""Fork-and-pre-execute oracle: shuffling, fits, validation accuracy."""

import pytest

from repro.dvfs.oracle import OracleSampler
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


def make_gpu(config, trips=2000):
    gpu = Gpu(config.gpu, initial_freq_ghz=config.dvfs.reference_freq_ghz)
    gpu.load_kernel(
        Kernel.homogeneous(make_loop_program(trips=trips), WorkgroupGeometry(4, 2))
    )
    gpu.run_epoch(1000.0)  # warm up
    return gpu


class TestShuffling:
    def test_every_domain_sees_every_frequency(self, tiny_config):
        sampler = OracleSampler(tiny_config)
        n = len(tiny_config.dvfs.frequencies_ghz)
        seen = [set() for _ in range(2)]
        for s in range(n):
            freqs = sampler._sample_freqs(s, 2)
            for d, f in enumerate(freqs):
                seen[d].add(f)
        for d in range(2):
            assert seen[d] == set(tiny_config.dvfs.frequencies_ghz)

    def test_domains_decorrelated(self, tiny_config):
        sampler = OracleSampler(tiny_config)
        freqs = sampler._sample_freqs(0, 2)
        assert freqs[0] != freqs[1]

    def test_stride_multiple_adjusted(self, tiny_config):
        # stride 10 == grid size would alias; constructor bumps it.
        sampler = OracleSampler(tiny_config, shuffle_stride=10)
        assert sampler.shuffle_stride != 10


class TestSampleSubset:
    def test_subset_spans_range(self, tiny_config):
        sampler = OracleSampler(tiny_config, n_sample_freqs=4)
        assert len(sampler.sample_grid) == 4
        assert sampler.sample_grid[0] == tiny_config.dvfs.f_min
        assert sampler.sample_grid[-1] == tiny_config.dvfs.f_max

    def test_subset_too_small_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            OracleSampler(tiny_config, n_sample_freqs=1)

    def test_full_grid_default(self, tiny_config):
        sampler = OracleSampler(tiny_config)
        assert sampler.sample_grid == tuple(tiny_config.dvfs.frequencies_ghz)


class TestSampling:
    def test_sample_produces_fit_per_domain(self, tiny_config):
        gpu = make_gpu(tiny_config)
        sample = OracleSampler(tiny_config, n_sample_freqs=4).sample(gpu)
        assert len(sample.fits) == 2
        assert len(sample.points[0]) == 4

    def test_sampling_does_not_disturb_parent(self, tiny_config):
        gpu = make_gpu(tiny_config)
        before = gpu.clone()
        OracleSampler(tiny_config, n_sample_freqs=4).sample(gpu)
        a = gpu.run_epoch(1000.0)
        b = before.run_epoch(1000.0)
        assert a.committed_per_cu() == b.committed_per_cu()

    def test_commits_at_returns_exact_point(self, tiny_config):
        gpu = make_gpu(tiny_config)
        sampler = OracleSampler(tiny_config, n_sample_freqs=4)
        sample = sampler.sample(gpu)
        for f, commits in sample.points[0]:
            assert sample.commits_at(0, f) == commits
        assert sample.commits_at(0, 9.99) is None

    def test_commits_at_tolerates_float_noise(self, tiny_config):
        # A round-trip through unit conversion (GHz -> MHz -> GHz) must
        # still match the sampled grid point (math.isclose, not ==).
        gpu = make_gpu(tiny_config)
        sample = OracleSampler(tiny_config, n_sample_freqs=4).sample(gpu)
        for f, commits in sample.points[0]:
            noisy = (f * 1000.0) / 1000.0 + 1e-12
            assert sample.commits_at(0, noisy) == commits
        # ...but must not bridge two adjacent 100 MHz grid points.
        f0 = sample.points[0][0][0]
        assert sample.commits_at(0, f0 + 0.05) is None

    def test_parallel_pre_execution_matches_serial(self, tiny_config):
        gpu = make_gpu(tiny_config)
        serial = OracleSampler(tiny_config, n_sample_freqs=3).sample(gpu)
        par_sampler = OracleSampler(tiny_config, n_sample_freqs=3, max_workers=2)
        try:
            parallel = par_sampler.sample(gpu)
        finally:
            par_sampler.close()
        assert parallel.points == serial.points

    def test_lines_predict_commits_reasonably(self, tiny_config):
        gpu = make_gpu(tiny_config)
        sample = OracleSampler(tiny_config, n_sample_freqs=4).sample(gpu)
        for d in range(2):
            line = sample.lines[d]
            for f, commits in sample.points[d]:
                if commits > 0:
                    assert line.predict(f) == pytest.approx(commits, rel=0.5)

    def test_best_frequency_uses_score(self, tiny_config):
        gpu = make_gpu(tiny_config)
        sample = OracleSampler(tiny_config, n_sample_freqs=4).sample(gpu)
        f_min = sample.best_frequency(0, lambda f, c: f)
        f_max = sample.best_frequency(0, lambda f, c: -f)
        assert f_min == tiny_config.dvfs.f_min
        assert f_max == tiny_config.dvfs.f_max


class TestSnapshotProtocol:
    def test_round_trip_replays_identically(self, tiny_config):
        """snapshot -> run -> restore -> run must repeat the exact run."""
        gpu = make_gpu(tiny_config)
        snap = gpu.snapshot()
        first = gpu.run_epoch(1000.0).committed_per_cu()
        after_first = [cu.now for cu in gpu.cus]
        gpu.restore(snap)
        second = gpu.run_epoch(1000.0).committed_per_cu()
        assert second == first
        assert [cu.now for cu in gpu.cus] == after_first

    def test_from_snapshot_matches_clone(self, tiny_config):
        from repro.gpu.gpu import Gpu

        gpu = make_gpu(tiny_config)
        twin = Gpu.from_snapshot(gpu.snapshot())
        a = gpu.run_epoch(1000.0).committed_per_cu()
        b = twin.run_epoch(1000.0).committed_per_cu()
        assert a == b

    def test_restore_rejects_foreign_config(self, tiny_config):
        from dataclasses import replace

        from repro.gpu.gpu import Gpu

        gpu = make_gpu(tiny_config)
        other = Gpu(replace(tiny_config.gpu))  # equal but distinct config
        with pytest.raises(ValueError):
            other.restore(gpu.snapshot())

    def test_snapshot_is_immutable_record(self, tiny_config):
        gpu = make_gpu(tiny_config)
        snap = gpu.snapshot()
        before = snap.cus
        gpu.run_epoch(1000.0)
        assert snap.cus is before  # frozen capture, not live references
        assert snap.nbytes > 0

    def test_snapshot_sampling_matches_clone_sampling(self, tiny_config):
        """The scratch-restore serial path must produce the same points
        as the pre-change clone-per-sample loop (reference engine)."""
        from dataclasses import replace as dc_replace

        points = {}
        for engine in ("event", "reference"):
            cfg = dc_replace(
                tiny_config, gpu=dc_replace(tiny_config.gpu, engine=engine)
            )
            gpu = make_gpu(cfg)
            points[engine] = OracleSampler(cfg, n_sample_freqs=3).sample(gpu).points
        assert points["event"] == points["reference"]

    def test_sampling_counters(self, tiny_config):
        gpu = make_gpu(tiny_config)
        sampler = OracleSampler(tiny_config, n_sample_freqs=3)
        sampler.sample(gpu)
        sampler.sample(gpu)
        assert sampler.ctr_samples == 2
        # Serial event-engine sampling snapshots the parent; it never clones.
        assert gpu.ctr_snapshots == 2
        assert gpu.ctr_clones == 0
        assert sampler._scratch is not None
        assert sampler._scratch.ctr_restores == 6

    def test_scratch_gpu_reused_across_samples(self, tiny_config):
        gpu = make_gpu(tiny_config)
        sampler = OracleSampler(tiny_config, n_sample_freqs=3)
        sampler.sample(gpu)
        scratch = sampler._scratch
        sampler.sample(gpu)
        assert sampler._scratch is scratch


class TestValidation:
    def test_validation_accuracy_high(self, tiny_config):
        """The paper reports 97.6% for shuffled pre-execution vs
        coherent re-execution; our substrate should be comparable."""
        gpu = make_gpu(tiny_config, trips=3000)
        sampler = OracleSampler(tiny_config)
        acc = sampler.validation_accuracy(gpu, [1.7, 1.5])
        assert acc > 0.9
