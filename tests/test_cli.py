"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "comd"])
        args_dict = vars(args)
        assert args_dict["design"] == "PCSTALL"
        assert args_dict["objective"] == "ed2p"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        import os
        import re

        from repro import __version__

        pyproject = os.path.join(os.path.dirname(__file__), "..", "pyproject.toml")
        with open(pyproject, "r", encoding="utf-8") as handle:
            match = re.search(r'^version\s*=\s*"([^"]+)"', handle.read(), re.M)
        assert match is not None
        assert match.group(1) == __version__


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "comd" in out and "dgemm" in out

    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "PCSTALL" in out and "HISTORY" in out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        assert "328" in capsys.readouterr().out

    def test_run_small(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main([
            "run", "comd", "--design", "STATIC@1.7", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "50", "--json", str(path),
        ])
        assert rc == 0
        assert "ED2P" in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert data["workload"] == "comd"

    def test_compare_small(self, capsys):
        rc = main([
            "compare", "xsbench", "--designs", "STATIC@1.7,STALL", "--cus", "2",
            "--waves", "4", "--scale", "0.1", "--max-epochs", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "STALL" in out

    def test_profile_with_csv(self, capsys, tmp_path):
        path = tmp_path / "trace.csv"
        rc = main([
            "profile", "comd", "--cus", "2", "--waves", "4", "--scale", "0.1",
            "--max-epochs", "5", "--csv", str(path),
        ])
        assert rc == 0
        assert path.exists()
        assert "same-PC" in capsys.readouterr().out

    def test_cap_objective_parse(self):
        rc = main([
            "run", "xsbench", "--design", "PCSTALL", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "40", "--objective", "cap5",
        ])
        assert rc == 0


class TestFaultTolerantSweeps:
    FIGURE = [
        "figure", "fig14", "--workloads", "comd", "--designs", "STALL",
        "--cus", "2", "--waves", "4", "--scale", "0.1", "--max-epochs", "40",
    ]

    def test_figure_resume_round_trip(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(self.FIGURE + cache) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "checkpoints" / "figure-fig14.manifest.jsonl").exists()

        assert main(self.FIGURE + cache + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint" in second
        # The resumed run renders the same figure rows.
        assert first.splitlines()[:5] == second.splitlines()[:5]

    def test_resume_requires_cache(self):
        with pytest.raises(SystemExit):
            main(self.FIGURE + ["--no-cache", "--resume"])

    def test_bad_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(self.FIGURE + ["--no-cache", "--retries", "0"])

    def test_run_retries_under_fault_plan(self, capsys, monkeypatch):
        from repro.runtime.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec

        plan = FaultPlan((FaultSpec("comd/*", "raise", attempts=1),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        rc = main([
            "run", "comd", "--design", "STATIC@1.7", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "40", "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault tolerance: 1 retry" in out
