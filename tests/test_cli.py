"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "comd"])
        args_dict = vars(args)
        assert args_dict["design"] == "PCSTALL"
        assert args_dict["objective"] == "ed2p"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "comd" in out and "dgemm" in out

    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "PCSTALL" in out and "HISTORY" in out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        assert "328" in capsys.readouterr().out

    def test_run_small(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        rc = main([
            "run", "comd", "--design", "STATIC@1.7", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "50", "--json", str(path),
        ])
        assert rc == 0
        assert "ED2P" in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert data["workload"] == "comd"

    def test_compare_small(self, capsys):
        rc = main([
            "compare", "xsbench", "--designs", "STATIC@1.7,STALL", "--cus", "2",
            "--waves", "4", "--scale", "0.1", "--max-epochs", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "STALL" in out

    def test_profile_with_csv(self, capsys, tmp_path):
        path = tmp_path / "trace.csv"
        rc = main([
            "profile", "comd", "--cus", "2", "--waves", "4", "--scale", "0.1",
            "--max-epochs", "5", "--csv", str(path),
        ])
        assert rc == 0
        assert path.exists()
        assert "same-PC" in capsys.readouterr().out

    def test_cap_objective_parse(self):
        rc = main([
            "run", "xsbench", "--design", "PCSTALL", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "40", "--objective", "cap5",
        ])
        assert rc == 0
