"""Hierarchical power management (Section 5.4)."""

import pytest

from repro.config import default_frequency_grid, small_config
from repro.core.objectives import EDnPObjective, ObjectiveContext, StaticObjective
from repro.core.sensitivity import LinearSensitivity
from repro.dvfs.designs import make_controller
from repro.dvfs.hierarchy import HierarchicalPowerManager, PowerManagedObjective
from repro.dvfs.simulation import DvfsSimulation
from repro.power.model import PowerModel
from repro.config import PowerConfig
from repro.workloads import build_workload, workload

GRID = default_frequency_grid()


def make_manager(budget=10.0, interval_ns=5_000.0):
    return HierarchicalPowerManager(GRID, power_budget=budget, interval_ns=interval_ns)


class TestManager:
    def test_starts_fully_open(self):
        m = make_manager()
        assert m.allowed_grid() == GRID
        assert m.f_max_allowed == GRID[-1]

    def test_over_budget_narrows_window(self):
        m = make_manager(budget=5.0, interval_ns=2_000.0)
        m.observe_epoch(epoch_power=50.0, duration_ns=1_000.0)
        m.observe_epoch(epoch_power=50.0, duration_ns=1_000.0)
        assert m.f_max_allowed < GRID[-1]
        assert m.adjustments

    def test_under_budget_reopens(self):
        m = make_manager(budget=5.0, interval_ns=2_000.0)
        for _ in range(2):
            m.observe_epoch(50.0, 1_000.0)
        narrowed = m.f_max_allowed
        for _ in range(2):
            m.observe_epoch(0.1, 1_000.0)
        assert m.f_max_allowed > narrowed

    def test_never_below_f_min(self):
        m = make_manager(budget=0.001, interval_ns=1_000.0)
        for _ in range(50):
            m.observe_epoch(100.0, 1_000.0)
        assert m.f_max_allowed == GRID[0]
        assert m.allowed_grid() == (GRID[0],)

    def test_no_adjustment_within_interval(self):
        m = make_manager(budget=1.0, interval_ns=1e9)
        m.observe_epoch(100.0, 1_000.0)
        assert m.f_max_allowed == GRID[-1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            HierarchicalPowerManager(GRID, power_budget=0.0)
        with pytest.raises(ValueError):
            HierarchicalPowerManager((), power_budget=1.0)
        with pytest.raises(ValueError):
            HierarchicalPowerManager(GRID, power_budget=1.0, interval_ns=0.0)


class TestManagedObjective:
    def _ctx(self):
        return ObjectiveContext(
            power=PowerModel(PowerConfig()),
            epoch_ns=1000.0,
            n_cus_in_domain=1,
            issue_width=2,
            memory_power_share=0.5,
        )

    def test_choice_clamped_to_window(self):
        m = make_manager(budget=1.0, interval_ns=1_000.0)
        for _ in range(6):  # slam the window down
            m.observe_epoch(100.0, 1_000.0)
        obj = PowerManagedObjective(StaticObjective(2.2), m)
        chosen = obj.choose(LinearSensitivity(0.0, 1000.0), GRID, 2.2, self._ctx())
        # StaticObjective wants 2.2 but the window no longer allows it;
        # the static inner returns its pin... the wrapper restricts the
        # grid, so the inner sees only low frequencies.
        assert chosen <= m.f_max_allowed or chosen == 2.2  # static pins
        ed = PowerManagedObjective(EDnPObjective(2), m)
        chosen2 = ed.choose(LinearSensitivity(0.0, 1000.0), GRID, 2.2, self._ctx())
        assert chosen2 <= m.f_max_allowed

    def test_name_decorated(self):
        m = make_manager()
        obj = PowerManagedObjective(EDnPObjective(2), m)
        assert "ED2P" in obj.name


class TestEndToEnd:
    def test_power_cap_respected_on_average(self):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        kernels = build_workload(workload("hacc"), scale=0.15)
        # Uncapped run to discover the natural power level.
        ctrl = make_controller("PCSTALL", cfg)
        free = DvfsSimulation(list(kernels), ctrl, cfg, max_epochs=200).run()
        natural = free.energy.total / free.delay_ns

        budget = natural * 0.8
        manager = HierarchicalPowerManager(
            cfg.dvfs.frequencies_ghz, power_budget=budget, interval_ns=5_000.0
        )
        ctrl2 = make_controller("PCSTALL", cfg)
        ctrl2.objective = PowerManagedObjective(ctrl2.objective, manager)
        capped = DvfsSimulation(
            list(kernels), ctrl2, cfg, max_epochs=300, power_manager=manager
        ).run()
        capped_power = capped.energy.total / capped.delay_ns
        assert capped_power < natural
        assert manager.adjustments  # the outer loop actually acted
