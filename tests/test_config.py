"""Configuration validation and derived quantities."""

import pytest

from repro.config import (
    DvfsConfig,
    GpuConfig,
    MemoryConfig,
    PowerConfig,
    SimConfig,
    default_frequency_grid,
    paper_config,
    small_config,
    transition_latency_ns,
)


class TestFrequencyGrid:
    def test_ten_states(self):
        grid = default_frequency_grid()
        assert len(grid) == 10

    def test_range_matches_paper(self):
        grid = default_frequency_grid()
        assert grid[0] == pytest.approx(1.3)
        assert grid[-1] == pytest.approx(2.2)

    def test_hundred_mhz_steps(self):
        grid = default_frequency_grid()
        for a, b in zip(grid, grid[1:]):
            assert b - a == pytest.approx(0.1)


class TestTransitionLatency:
    def test_paper_calibration_points(self):
        assert transition_latency_ns(1_000.0) == pytest.approx(4.0)
        assert transition_latency_ns(10_000.0) == pytest.approx(40.0)
        assert transition_latency_ns(50_000.0) == pytest.approx(200.0)
        assert transition_latency_ns(100_000.0) == pytest.approx(400.0)

    def test_interpolates_between_points(self):
        mid = transition_latency_ns(30_000.0)
        assert 40.0 < mid < 200.0

    def test_clamps_outside_range(self):
        assert transition_latency_ns(10.0) == pytest.approx(4.0)
        assert transition_latency_ns(1e9) == pytest.approx(400.0)

    def test_dvfs_config_override(self):
        cfg = DvfsConfig(epoch_ns=1000.0, transition_latency_override_ns=7.5)
        assert cfg.transition_latency_ns == pytest.approx(7.5)

    def test_dvfs_config_uses_table(self):
        cfg = DvfsConfig(epoch_ns=10_000.0)
        assert cfg.transition_latency_ns == pytest.approx(40.0)


class TestGpuConfig:
    def test_defaults_match_paper_platform(self):
        cfg = GpuConfig()
        assert cfg.n_cus == 64
        assert cfg.waves_per_cu == 40
        assert cfg.memory.n_l2_banks == 16
        assert cfg.memory_freq_ghz == pytest.approx(1.6)

    def test_domain_count(self):
        assert GpuConfig(n_cus=8, cus_per_domain=2).n_domains == 4

    def test_rejects_indivisible_domain_size(self):
        with pytest.raises(ValueError):
            GpuConfig(n_cus=8, cus_per_domain=3)

    def test_rejects_zero_cus(self):
        with pytest.raises(ValueError):
            GpuConfig(n_cus=0)


class TestDvfsConfig:
    def test_reference_on_grid_required(self):
        with pytest.raises(ValueError):
            DvfsConfig(reference_freq_ghz=1.75)

    def test_rejects_unsorted_grid(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies_ghz=(2.2, 1.3), reference_freq_ghz=1.3)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            DvfsConfig(frequencies_ghz=())

    def test_rejects_non_positive_epoch(self):
        with pytest.raises(ValueError):
            DvfsConfig(epoch_ns=0.0)

    def test_min_max(self):
        cfg = DvfsConfig()
        assert cfg.f_min == pytest.approx(1.3)
        assert cfg.f_max == pytest.approx(2.2)


class TestFactories:
    def test_small_config_scales_down(self):
        cfg = small_config(n_cus=4)
        assert cfg.gpu.n_cus == 4
        assert cfg.gpu.n_domains == 4

    def test_paper_config_is_paper_scale(self):
        cfg = paper_config()
        assert cfg.gpu.n_cus == 64
        assert cfg.gpu.waves_per_cu == 40

    def test_paper_config_domain_granularity(self):
        cfg = paper_config(cus_per_domain=32)
        assert cfg.gpu.n_domains == 2

    def test_small_config_domains(self):
        cfg = small_config(n_cus=4, cus_per_domain=2)
        assert cfg.gpu.n_domains == 2
