"""Sensitivity metric: linear model, fitting, aggregation, change metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sensitivity import (
    LinearSensitivity,
    aggregate,
    fit_linear,
    mean_relative_change,
    relative_change,
    weighted_relative_change,
)


class TestLinearSensitivity:
    def test_predict(self):
        line = LinearSensitivity(i0=100.0, slope=50.0)
        assert line.predict(2.0) == pytest.approx(200.0)

    def test_predict_floors_at_zero(self):
        line = LinearSensitivity(i0=-500.0, slope=10.0)
        assert line.predict(1.0) == 0.0

    def test_addition_is_commutative_aggregation(self):
        a = LinearSensitivity(10.0, 5.0)
        b = LinearSensitivity(20.0, 1.0)
        s = a + b
        assert s.i0 == pytest.approx(30.0)
        assert s.slope == pytest.approx(6.0)

    def test_from_two_points(self):
        line = LinearSensitivity.from_two_points(1.0, 100.0, 2.0, 180.0)
        assert line.slope == pytest.approx(80.0)
        assert line.predict(1.5) == pytest.approx(140.0)

    def test_from_two_points_rejects_equal_freqs(self):
        with pytest.raises(ValueError):
            LinearSensitivity.from_two_points(1.0, 10.0, 1.0, 20.0)

    def test_zero(self):
        z = LinearSensitivity.zero()
        assert z.predict(2.2) == 0.0


class TestAggregate:
    def test_sums_parts(self):
        parts = [LinearSensitivity(1.0, 2.0)] * 5
        total = aggregate(parts)
        assert total.i0 == pytest.approx(5.0)
        assert total.slope == pytest.approx(10.0)

    def test_empty_is_zero(self):
        assert aggregate([]).slope == 0.0


class TestFitLinear:
    def test_exact_line_recovered(self):
        freqs = [1.3, 1.6, 1.9, 2.2]
        insts = [10 + 5 * f for f in freqs]
        fit = fit_linear(freqs, insts)
        assert fit.model.slope == pytest.approx(5.0)
        assert fit.model.i0 == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_flat_data_r2_is_one(self):
        fit = fit_linear([1.3, 1.7, 2.2], [100.0, 100.0, 100.0])
        assert fit.model.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_data_r2_below_one(self):
        fit = fit_linear([1.0, 2.0, 3.0, 4.0], [1.0, 5.0, 2.0, 8.0])
        assert 0.0 < fit.r_squared < 1.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [1.0, 2.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [1.0])

    def test_rejects_degenerate_freqs(self):
        with pytest.raises(ValueError):
            fit_linear([1.5, 1.5], [1.0, 2.0])

    @given(
        slope=st.floats(-100, 100),
        i0=st.floats(-100, 100),
    )
    def test_property_recovers_any_line(self, slope, i0):
        freqs = [1.3, 1.5, 1.7, 1.9, 2.1]
        insts = [i0 + slope * f for f in freqs]
        fit = fit_linear(freqs, insts)
        assert fit.model.slope == pytest.approx(slope, abs=1e-6)
        assert fit.model.i0 == pytest.approx(i0, abs=1e-6)


class TestChangeMetrics:
    def test_relative_change_basic(self):
        assert relative_change(100.0, 50.0) == pytest.approx(0.5)

    def test_relative_change_symmetric(self):
        assert relative_change(50.0, 100.0) == pytest.approx(relative_change(100.0, 50.0))

    def test_relative_change_zero_pair(self):
        assert relative_change(0.0, 0.0) == pytest.approx(0.0)

    def test_mean_relative_change(self):
        series = [100.0, 100.0, 50.0]
        assert mean_relative_change(series) == pytest.approx(0.25)

    def test_mean_relative_change_short_series(self):
        assert mean_relative_change([5.0]) == 0.0

    def test_weighted_change_downweights_tiny_pairs(self):
        # A 0->1 flip (tiny magnitude) alongside a stable 1000-series:
        # the tiny pair must not dominate the average.
        assert weighted_relative_change([[0.0, 1.0], [1000.0, 1000.0]]) < 0.01

    def test_weighted_change_constant_is_zero(self):
        assert weighted_relative_change([[5.0] * 10]) == pytest.approx(0.0)

    def test_weighted_change_alternating_is_high(self):
        assert weighted_relative_change([[100.0, 0.0] * 5]) == pytest.approx(1.0)

    @given(st.lists(st.floats(0.1, 1e6), min_size=2, max_size=30))
    def test_weighted_change_bounded(self, series):
        v = weighted_relative_change([series])
        assert 0.0 <= v <= 2.0

    @given(st.lists(st.floats(0.1, 1e6), min_size=2, max_size=30), st.floats(0.1, 100))
    def test_weighted_change_scale_invariant(self, series, k):
        a = weighted_relative_change([series])
        b = weighted_relative_change([[x * k for x in series]])
        assert a == pytest.approx(b, rel=1e-6)
