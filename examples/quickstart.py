#!/usr/bin/env python3
"""Quickstart: run one workload under PCSTALL and a static baseline.

This is the smallest end-to-end use of the library:

1. build a platform configuration,
2. synthesise a workload from the TABLE II suite,
3. run it under a DVFS design from TABLE III,
4. compare energy/delay/ED2P against a static baseline.

Run:  python examples/quickstart.py
"""

from repro import DvfsSimulation, make_controller, small_config
from repro.analysis.report import format_table
from repro.core import EDnPObjective
from repro.workloads import build_workload, workload


def run_design(design: str, cfg, kernels):
    controller = make_controller(design, cfg, EDnPObjective(2))
    sim = DvfsSimulation(
        list(kernels), controller, cfg, design_name=design, max_epochs=400,
        oracle_sample_freqs=4,
    )
    return sim.run()


def main() -> None:
    # A 4-CU platform with per-CU V/f domains and 1us DVFS epochs.
    cfg = small_config(n_cus=4, waves_per_cu=8, epoch_ns=1_000.0)

    # 'comd' alternates compute bursts with neighbour-gather phases -
    # exactly the fine-grain phase behaviour PCSTALL predicts.
    kernels = build_workload(workload("comd"), scale=0.4)
    print(f"workload: comd ({len(kernels)} kernel(s), "
          f"{kernels[0].static_instruction_count()} static instructions)\n")

    rows = []
    baseline = None
    for design in ("STATIC@1.7", "CRISP", "PCSTALL"):
        result = run_design(design, cfg, kernels)
        if baseline is None:
            baseline = result
        rows.append([
            design,
            result.epochs,
            result.delay_ns / 1e3,
            result.energy.total,
            result.ed2p / baseline.ed2p,
            "-" if result.prediction_accuracy is None
            else f"{result.prediction_accuracy:.2f}",
        ])

    print(format_table(
        ["design", "epochs", "delay (us)", "energy", "ED2P (norm)", "accuracy"],
        rows,
        title="comd under fine-grain DVFS (1us epochs, ED2P objective)",
    ))
    print("\nPCSTALL should beat both the static baseline and the reactive "
          "CRISP design on normalised ED2P, with higher prediction accuracy.")


if __name__ == "__main__":
    main()
