#!/usr/bin/env python3
"""Power-capped node: the Section 5.4 hierarchy end to end.

A millisecond-scale power manager holds the GPU under a power budget by
narrowing the V/f window available to the hardware PCSTALL loop; within
the window, PCSTALL keeps optimising ED2P per epoch. This is exactly the
division of labour the paper assumes between firmware and its hardware
controller.

Run:  python examples/power_capped_node.py
"""

from repro import DvfsSimulation, make_controller, small_config
from repro.analysis.report import format_table
from repro.core import EDnPObjective
from repro.dvfs.hierarchy import HierarchicalPowerManager, PowerManagedObjective
from repro.workloads import build_workload, workload


def run(cfg, budget=None):
    kernels = build_workload(workload("hacc"), scale=1.0)
    controller = make_controller("PCSTALL", cfg, EDnPObjective(2))
    manager = None
    if budget is not None:
        manager = HierarchicalPowerManager(
            cfg.dvfs.frequencies_ghz, power_budget=budget, interval_ns=2_500.0
        )
        controller.objective = PowerManagedObjective(controller.objective, manager)
    result = DvfsSimulation(
        kernels, controller, cfg, design_name="PCSTALL", max_epochs=400,
        power_manager=manager,
    ).run()
    return result, manager


def main() -> None:
    cfg = small_config(n_cus=4, waves_per_cu=8)

    free, _ = run(cfg)
    natural_power = free.energy.total / free.delay_ns
    print(f"uncapped run: avg power {natural_power:.2f}, "
          f"delay {free.delay_ns/1e3:.1f} us\n")

    rows = []
    for fraction in (1.0, 0.85, 0.7):
        budget = natural_power * fraction
        result, manager = run(cfg, budget=budget)
        avg_power = result.energy.total / result.delay_ns
        rows.append([
            f"{fraction:.0%} of natural",
            budget,
            avg_power,
            result.delay_ns / 1e3,
            manager.f_max_allowed,
            len(manager.adjustments),
        ])
    print(format_table(
        ["budget", "cap", "avg power", "delay (us)", "final f_max", "adjustments"],
        rows,
        title="hacc under hierarchical power capping (PCSTALL inside)",
    ))
    print("\nTighter budgets drive the manager to clamp f_max; average power "
          "tracks the cap while delay degrades gracefully.")


if __name__ == "__main__":
    main()
