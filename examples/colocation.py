#!/usr/bin/env python3
"""Co-location: why per-CU V/f domains matter for space-shared GPUs.

Pins a compute-bound tenant (hacc) to half the CUs and a memory-bound
tenant (xsbench) to the other half, then compares per-CU V/f domains
against a single chip-wide domain under the same PCSTALL controller.

With fine domains the controller gives each tenant its own frequency;
with one coarse domain it must split the difference — hurting both.

Run:  python examples/colocation.py
"""

from dataclasses import replace

from repro import make_controller, small_config
from repro.analysis.report import format_table
from repro.core import EDnPObjective
from repro.dvfs.colocation import ColocationSimulation, Tenant
from repro.workloads import build_workload, workload


def run(cfg, cus_per_domain):
    c = replace(cfg, gpu=replace(cfg.gpu, cus_per_domain=cus_per_domain))
    tenants = [
        Tenant("hacc", build_workload(workload("hacc"), scale=0.55), (0, 1)),
        Tenant("xsbench", build_workload(workload("xsbench"), scale=0.12), (2, 3)),
    ]
    controller = make_controller("PCSTALL", c, EDnPObjective(2))
    result = ColocationSimulation(tenants, controller, c, max_epochs=800).run()
    freqs = controller.log.chosen_freqs
    # Mean frequency experienced by each tenant's first CU's domain.
    per = c.gpu.cus_per_domain
    mean_f = {
        "hacc": sum(e[0 // per] for e in freqs) / len(freqs),
        "xsbench": sum(e[2 // per] for e in freqs) / len(freqs),
    }
    return result, mean_f


def main() -> None:
    cfg = small_config(n_cus=4, waves_per_cu=8)
    rows = []
    for per, label in ((1, "per-CU domains"), (4, "one chip-wide domain")):
        result, mean_f = run(cfg, per)
        rows.append([
            label,
            result.energy.total,
            result.completion_ns["hacc"] / 1e3,
            result.completion_ns["xsbench"] / 1e3,
            result.ed2p,
            mean_f["hacc"],
            mean_f["xsbench"],
        ])
    base = rows[0][4]
    for r in rows:
        r.append(r[4] / base)
    print(format_table(
        ["granularity", "energy", "hacc done (us)", "xsb done (us)", "ED2P",
         "f(hacc)", "f(xsb)", "ED2P rel"],
        rows,
        title="hacc + xsbench co-located on 4 CUs under PCSTALL",
    ))
    print("\nPer-CU domains let the compute tenant run fast while the "
          "memory tenant saves energy at 1.3 GHz; a chip-wide domain "
          "forces one compromise frequency on both.")


if __name__ == "__main__":
    main()
