#!/usr/bin/env python3
"""Phase explorer: reproduce the paper's workload-analysis methodology.

Profiles a workload with the fork-and-pre-execute oracle and reports the
three observations PCSTALL is built on (Sections 3.2-4.3):

* instructions committed are ~linear in frequency (Figure 5),
* sensitivity varies strongly across consecutive 1us epochs (Figure 7),
* epochs starting at the same wavefront PC repeat their sensitivity far
  better (Figure 10).

Run:  python examples/phase_explorer.py [workload]
"""

import sys

from repro import small_config
from repro.analysis.linearity import linearity_study
from repro.analysis.phases import (
    consecutive_epoch_change,
    profile_sensitivity,
    same_pc_iteration_change,
)
from repro.analysis.report import format_table
from repro.workloads import build_workload, workload, workload_names


def sparkline(series, width=48):
    """Render a sensitivity series as a coarse ASCII profile."""
    if not series:
        return ""
    top = max(max(series), 1e-9)
    glyphs = " .:-=+*#%@"
    cells = series[:width]
    return "".join(glyphs[min(9, int(9 * v / top))] for v in cells)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "BwdBN"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; choose from {workload_names()}")

    cfg = small_config()
    kernels = build_workload(workload(name), scale=0.3)

    print(f"=== {name}: fine-grain phase analysis (1us epochs) ===\n")

    # Figure 5: linearity of I(f).
    lin = linearity_study(kernels, cfg, sample_epochs=(2, 5, 9, 14), max_epochs=18)
    print(f"Linearity of instructions vs frequency: mean R^2 = "
          f"{lin.mean_r_squared:.2f} (paper: 0.82)\n")

    # Oracle-profiled sensitivity trace.
    trace = profile_sensitivity(kernels, cfg, max_epochs=30, workload_name=name)

    print("Per-CU sensitivity over time (each row one CU, dark = sensitive):")
    for cu in range(cfg.gpu.n_cus):
        print(f"  CU{cu}: |{sparkline(trace.cu_series(cu))}|")
    print()

    rows = [
        ["consecutive epochs (CU)", consecutive_epoch_change(trace, "cu")],
        ["consecutive epochs (wavefront)", consecutive_epoch_change(trace, "wf")],
        ["same-PC iterations (wavefront)", same_pc_iteration_change(trace, "wf")],
        ["same-PC iterations (CU-shared)", same_pc_iteration_change(trace, "cu")],
        ["same-PC iterations (GPU-shared)", same_pc_iteration_change(trace, "gpu")],
    ]
    print(format_table(
        ["measurement", "avg relative change"], rows,
        title="Variability (paper: consecutive ~0.37, same-PC ~0.10)",
    ))
    print("\nThe gap between the last three rows and the first two is why a "
          "PC-indexed predictor beats any reactive scheme: the starting PC "
          "identifies the upcoming work segment.")


if __name__ == "__main__":
    main()
