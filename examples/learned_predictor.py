#!/usr/bin/env python3
"""Train a sensitivity model from recorded telemetry and serve it back.

The learned-predictor loop, end to end and in-process:

1. record observation traces for a few designs (the multi-design mix
   gives the trainer frequency coverage a single design's own choices
   never provide),
2. extract a supervised dataset (features of epoch t, oracle line of
   epoch t+1),
3. train the online-RLS model and version it in a registry,
4. close the loop: run the LEARNED design against the baselines it is
   supposed to beat, with oracle scoring on.

Run:  python examples/learned_predictor.py
"""

import tempfile
from pathlib import Path

from repro.config import small_config
from repro.learn import (
    ModelRegistry,
    OnlineRLSModel,
    compare_designs,
    extract_dataset,
    offline_metrics,
)
from repro.runtime.executor import SweepTask, run_task
from repro.telemetry import EpochTraceRecorder, TelemetryConfig

#: Designs whose traces feed the trainer. Static points pin the ends of
#: the frequency range; the dynamic designs add realistic phase mixes.
RECORDING_DESIGNS = ("PCSTALL", "STATIC@1.3", "STATIC@2.2")


def record_trace(path: Path, design: str, config) -> None:
    recorder = EpochTraceRecorder(TelemetryConfig(
        ring_size=0,
        jsonl_path=str(path),
        record_pc_attribution=False,
        record_observations=True,
    ))
    task = SweepTask("dgemm", design, config, scale=0.2,
                     max_epochs=60, oracle_sample_freqs=3,
                     collect_accuracy=True)
    with recorder:
        run_task(task, recorder=recorder)


def main() -> None:
    config = small_config(n_cus=2, waves_per_cu=4, epoch_ns=1000.0)

    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        traces = []
        for design in RECORDING_DESIGNS:
            path = scratch / f"{design.replace('@', '_')}.jsonl"
            record_trace(path, design, config)
            traces.append(path)
        print(f"recorded {len(traces)} observation trace(s)")

        dataset = extract_dataset(traces, eval_fraction=0.25)
        print(f"extracted {len(dataset)} rows "
              f"({dataset.n_train} train / {dataset.n_eval} eval), "
              f"hash {dataset.content_hash()[:12]}...")

        train = dataset.rows("train")
        model = OnlineRLSModel.train(
            dataset.features[train],
            dataset.next_f[train],
            dataset.next_commits[train],
            labels=dataset.labels[train],
            anchor_freqs=dataset.frequency_range(),
        )
        m = offline_metrics(model, dataset, split="eval")
        print(f"held-out relative error: p50 {m['rel_p50']:.3f}, "
              f"p90 {m['rel_p90']:.3f}")

        registry = ModelRegistry(scratch / "models")
        artifact_id = registry.save(
            model, {"dataset_hash": dataset.content_hash()}, name="example"
        )
        print(f"registry artifact {artifact_id[:16]}... (ref 'example')\n")

        # Reload through the registry - exactly what LEARNED@example does.
        served, _ = registry.load("example")
        report = compare_designs(
            served, "dgemm", config,
            baselines=("STATIC@1.7", "CRISP"),
            dataset=dataset, scale=0.2, max_epochs=60,
            oracle_sample_freqs=3,
        )
        print(report.render())
        print("\nLEARNED should sit near ORACLE on ED2P, ahead of the "
              "static point it was never tuned for.")


if __name__ == "__main__":
    main()
