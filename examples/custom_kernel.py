#!/usr/bin/env python3
"""Bring your own kernel: hand-write a GPU program and watch PCSTALL learn it.

Shows the low-level ISA API: build a program instruction by instruction
(compute bursts, loads, ``s_waitcnt`` fences, a loop), run it epoch by
epoch under a PCSTALL controller, and watch the PC table's hit ratio and
the controller's frequency choices converge.

Run:  python examples/custom_kernel.py
"""

from repro import small_config
from repro.core import EDnPObjective
from repro.dvfs.designs import make_controller
from repro.gpu.gpu import Gpu
from repro.gpu.isa import ProgramBuilder, load, valu, waitcnt
from repro.gpu.kernel import Kernel, WorkgroupGeometry


def build_two_phase_program():
    """~230-instruction loop body: an FMA burst then a gather burst."""
    b = ProgramBuilder()
    top = b.label()
    # Phase 1: compute burst (8 x 20 VALU, cache-friendly loads).
    for _ in range(8):
        for _ in range(20):
            b.emit(valu())
        b.emit(load(l1_hit_rate=0.9, l2_hit_rate=0.8))
        b.emit(waitcnt(0))
    # Phase 2: gather burst (cache-hostile strided loads, MLP of 3).
    for _ in range(10):
        outstanding = 0
        for _ in range(3):
            b.emit(load(l1_hit_rate=0.2, l2_hit_rate=0.4))
            outstanding += 1
            if outstanding == 3:
                b.emit(waitcnt(0))
                outstanding = 0
        b.emit(valu(), valu())
        if outstanding:
            b.emit(waitcnt(0))
    b.loop_back(top, trips=30)
    return b.build("two-phase")


def main() -> None:
    cfg = small_config(n_cus=2, waves_per_cu=8)
    program = build_two_phase_program()
    kernel = Kernel.homogeneous(program, WorkgroupGeometry(n_workgroups=4, waves_per_workgroup=4))
    print(f"program: {len(program)} static instructions "
          f"({program.pc_of(len(program) - 1)} bytes)\n")

    gpu = Gpu(cfg.gpu, initial_freq_ghz=cfg.dvfs.reference_freq_ghz)
    gpu.load_kernel(kernel)
    controller = make_controller("PCSTALL", cfg, EDnPObjective(2))
    predictor = controller.predictor

    print(f"{'epoch':>5} {'f(d0)':>6} {'commits':>8} {'hit ratio':>9}  note")
    epoch = 0
    while not gpu.done and epoch < 200:
        freqs = controller.decide()
        gpu.set_domain_frequencies(freqs, cfg.dvfs.transition_latency_ns)
        result = gpu.run_epoch(cfg.dvfs.epoch_ns)
        controller.observe(result)
        if epoch < 10 or epoch % 20 == 0:
            note = "(table warming up)" if epoch < 3 else ""
            print(f"{epoch:5d} {freqs[0]:6.1f} {result.total_committed():8d} "
                  f"{predictor.hit_ratio():9.2f}  {note}")
        epoch += 1

    print(f"\nfinished in {epoch} epochs; final PC-table hit ratio "
          f"{predictor.hit_ratio():.2f} (paper tunes for 95%+)")
    res = controller.log.frequency_residency(cfg.dvfs.frequencies_ghz)
    busy = {f: round(s, 2) for f, s in res.items() if s > 0.02}
    print(f"frequency residency: {busy}")
    print("\nThe controller should oscillate between low frequency (gather "
          "phase) and high frequency (FMA phase) as the PC table learns "
          "which code regions are which.")


if __name__ == "__main__":
    main()
