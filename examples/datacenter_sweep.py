#!/usr/bin/env python3
"""Datacenter scenario: pick a DVFS design for a mixed HPC+MI node.

Sweeps several deployment questions a datacenter operator would ask:

1. Which design minimises ED2P across a mixed workload set?
2. How much energy can be saved under a strict (5%) QoS slowdown cap?
3. What happens if the board only supports coarse V/f domains?

Run:  python examples/datacenter_sweep.py
"""

from dataclasses import replace

from repro import DvfsSimulation, make_controller, small_config
from repro.analysis.report import format_table, geometric_mean
from repro.core import EDnPObjective, PerformanceCapObjective
from repro.workloads import build_workload, workload

MIX = ("hacc", "xsbench", "dgemm", "BwdPool")  # HPC + MI node mix
DESIGNS = ("STATIC@1.7", "CRISP", "PCSTALL")


def run(design, cfg, name, objective):
    kernels = build_workload(workload(name), scale=0.3)
    ctrl = make_controller(design, cfg, objective)
    return DvfsSimulation(
        kernels, ctrl, cfg, design_name=design, workload_name=name,
        max_epochs=300, oracle_sample_freqs=4,
    ).run()


def question_1(cfg):
    print("Q1: which design minimises ED2P on the node mix?\n")
    base = {w: run("STATIC@1.7", cfg, w, EDnPObjective(2)) for w in MIX}
    rows = []
    for design in DESIGNS:
        ratios = []
        for w in MIX:
            r = run(design, cfg, w, EDnPObjective(2))
            ratios.append(r.ed2p / base[w].ed2p)
        rows.append([design] + ratios + [geometric_mean(ratios)])
    print(format_table(["design"] + list(MIX) + ["GEOMEAN"], rows,
                       title="ED2P normalised to static 1.7 GHz"))
    print()


def question_2(cfg):
    print("Q2: energy saved under a 5% slowdown budget (vs 2.2 GHz)?\n")
    base = {w: run(f"STATIC@{cfg.dvfs.f_max}", cfg, w, EDnPObjective(2)) for w in MIX}
    rows = []
    for design in ("CRISP", "PCSTALL"):
        e_ratios, d_ratios = [], []
        for w in MIX:
            r = run(design, cfg, w, PerformanceCapObjective(0.05))
            e_ratios.append(r.energy.total / base[w].energy.total)
            d_ratios.append(r.delay_ns / base[w].delay_ns)
        rows.append([
            design,
            f"{1 - geometric_mean(e_ratios):.1%}",
            f"{geometric_mean(d_ratios) - 1:.1%}",
        ])
    print(format_table(["design", "energy saved", "slowdown"], rows))
    print()


def question_3(cfg):
    print("Q3: is fine-grain hardware worth it? (per-CU vs whole-GPU domain)\n")
    rows = []
    for cus_per_domain in (1, cfg.gpu.n_cus):
        coarse_cfg = replace(cfg, gpu=replace(cfg.gpu, cus_per_domain=cus_per_domain))
        ratios = []
        for w in MIX:
            base = run("STATIC@1.7", coarse_cfg, w, EDnPObjective(2))
            r = run("PCSTALL", coarse_cfg, w, EDnPObjective(2))
            ratios.append(r.ed2p / base.ed2p)
        label = "per-CU domains" if cus_per_domain == 1 else "single GPU domain"
        rows.append([label, geometric_mean(ratios)])
    print(format_table(["V/f granularity", "PCSTALL ED2P (norm)"], rows))


def main() -> None:
    cfg = small_config(n_cus=4, waves_per_cu=8)
    question_1(cfg)
    question_2(cfg)
    question_3(cfg)


if __name__ == "__main__":
    main()
